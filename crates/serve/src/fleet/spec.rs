//! Fleet topology: which platforms, how many replicas, which pool.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use skip_hw::Platform;
use skip_llm::ModelConfig;

use crate::config::check;
use crate::fleet::arrivals::ArrivalProcess;
use crate::fleet::autoscale::AutoscaleConfig;
use crate::observe::SloTargets;

/// Which pool a replica group serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolRole {
    /// Runs both phases with continuous batching (the PR 5 floor's
    /// behaviour) — the homogeneous/heterogeneous *non*-disaggregated
    /// case.
    Unified,
    /// Runs prompt prefills only, then hands the KV cache off.
    Prefill,
    /// Receives prefilled KV caches and runs decode steps to completion.
    Decode,
}

impl PoolRole {
    /// Short label used in spec strings and experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PoolRole::Unified => "unified",
            PoolRole::Prefill => "prefill",
            PoolRole::Decode => "decode",
        }
    }
}

/// A group of identical replicas: one platform, one pool, `count` copies.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaGroup {
    /// The platform every replica in the group runs on.
    pub platform: Platform,
    /// Number of replicas.
    pub count: u32,
    /// The pool the group serves.
    pub role: PoolRole,
}

/// A deployment's replica topology: one or more [`ReplicaGroup`]s,
/// possibly mixing platforms and pools.
///
/// # Example
///
/// ```
/// use skip_serve::FleetSpec;
///
/// let hom = FleetSpec::parse("intel_h100:4").unwrap();
/// assert!(!hom.is_disaggregated());
/// let dis = FleetSpec::parse("prefill=gh200:2,decode=intel_h100:2").unwrap();
/// assert!(dis.is_disaggregated());
/// assert_eq!(dis.total_replicas(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// The replica groups, in declaration order.
    pub groups: Vec<ReplicaGroup>,
}

impl FleetSpec {
    /// A fleet of `count` identical unified replicas.
    #[must_use]
    pub fn homogeneous(platform: Platform, count: u32) -> Self {
        FleetSpec {
            groups: vec![ReplicaGroup {
                platform,
                count,
                role: PoolRole::Unified,
            }],
        }
    }

    /// A disaggregated fleet: `prefill_count` prefill replicas on
    /// `prefill` and `decode_count` decode replicas on `decode`.
    #[must_use]
    pub fn disaggregated(
        prefill: Platform,
        prefill_count: u32,
        decode: Platform,
        decode_count: u32,
    ) -> Self {
        FleetSpec {
            groups: vec![
                ReplicaGroup {
                    platform: prefill,
                    count: prefill_count,
                    role: PoolRole::Prefill,
                },
                ReplicaGroup {
                    platform: decode,
                    count: decode_count,
                    role: PoolRole::Decode,
                },
            ],
        }
    }

    /// Parses a CLI fleet spec: comma-separated
    /// `[prefill=|decode=]<platform>:<count>` entries, e.g.
    /// `gh200:2,intel_h100:2` (unified heterogeneous) or
    /// `prefill=gh200:2,decode=intel_h100:2` (disaggregated). Platforms
    /// are `amd_a100`, `intel_h100`, `gh200`, or `mi300a`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut groups = Vec::new();
        for entry in s.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err("empty fleet entry".into());
            }
            let (role, rest) = match entry.split_once('=') {
                Some(("prefill", rest)) => (PoolRole::Prefill, rest),
                Some(("decode", rest)) => (PoolRole::Decode, rest),
                Some((other, _)) => {
                    return Err(format!(
                        "unknown pool '{other}' in '{entry}' (expected prefill= or decode=)"
                    ))
                }
                None => (PoolRole::Unified, entry),
            };
            let (name, count) = rest
                .split_once(':')
                .ok_or_else(|| format!("'{entry}' is not <platform>:<count>"))?;
            let platform = match name {
                "amd_a100" => Platform::amd_a100(),
                "intel_h100" => Platform::intel_h100(),
                "gh200" => Platform::gh200(),
                "mi300a" => Platform::mi300a(),
                other => return Err(format!("unknown platform '{other}' in '{entry}'")),
            };
            let count: u32 = count
                .parse()
                .map_err(|_| format!("bad replica count in '{entry}'"))?;
            groups.push(ReplicaGroup {
                platform,
                count,
                role,
            });
        }
        Ok(FleetSpec { groups })
    }

    /// `true` when the spec declares prefill/decode pools.
    #[must_use]
    pub fn is_disaggregated(&self) -> bool {
        self.groups.iter().any(|g| g.role != PoolRole::Unified)
    }

    /// Replicas across all groups.
    #[must_use]
    pub fn total_replicas(&self) -> u32 {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Replicas serving `role`.
    #[must_use]
    pub fn replicas_in(&self, role: PoolRole) -> u32 {
        self.groups
            .iter()
            .filter(|g| g.role == role)
            .map(|g| g.count)
            .sum()
    }

    /// Canonical spec string (inverse of [`parse`](Self::parse) up to
    /// whitespace).
    #[must_use]
    pub fn label(&self) -> String {
        self.groups
            .iter()
            .map(|g| match g.role {
                PoolRole::Unified => format!("{}:{}", g.platform.name, g.count),
                role => format!("{}={}:{}", role.label(), g.platform.name, g.count),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Rewrites an untagged multi-group spec into a disaggregated one:
    /// the first group prefills, the remaining groups decode. Specs that
    /// already carry roles are returned unchanged.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec has only one untagged group, so
    /// there is nothing to split into two pools.
    pub fn into_disaggregated(mut self) -> Result<Self, String> {
        if self.is_disaggregated() {
            return Ok(self);
        }
        if self.groups.len() < 2 {
            return Err(
                "disaggregation needs at least two groups (or explicit prefill=/decode= roles)"
                    .into(),
            );
        }
        for (i, g) in self.groups.iter_mut().enumerate() {
            g.role = if i == 0 {
                PoolRole::Prefill
            } else {
                PoolRole::Decode
            };
        }
        Ok(self)
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Replica-routing policy for fleet dispatch (arrivals onto the prefill
/// or unified pool, handoffs onto the decode pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetRouterPolicy {
    /// Deal to eligible replicas in rotation, blind to load and platform.
    RoundRobin,
    /// Join the eligible replica with the least outstanding work (queued +
    /// running + inbound handoffs), ties to the lowest index.
    JoinShortestQueue,
    /// Join the replica with the least outstanding *time*: outstanding
    /// work weighted by the platform's per-request service estimate from
    /// its [`LatencyModel`](crate::LatencyModel), so a gh200 queue of 3
    /// and an amd_a100 queue of 3 are not the same thing. Degenerates to
    /// [`JoinShortestQueue`] on a homogeneous fleet.
    CostModelJsq,
}

impl FleetRouterPolicy {
    /// Parses a CLI spelling: `rr`/`round-robin`,
    /// `jsq`/`join-shortest-queue`, `cost`/`cost-jsq`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted spellings on anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "rr" | "round-robin" => FleetRouterPolicy::RoundRobin,
            "jsq" | "join-shortest-queue" => FleetRouterPolicy::JoinShortestQueue,
            "cost" | "cost-jsq" => FleetRouterPolicy::CostModelJsq,
            other => {
                return Err(format!(
                    "unknown fleet router '{other}' (expected rr, jsq, or cost)"
                ))
            }
        })
    }

    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FleetRouterPolicy::RoundRobin => "rr",
            FleetRouterPolicy::JoinShortestQueue => "jsq",
            FleetRouterPolicy::CostModelJsq => "cost-jsq",
        }
    }
}

impl fmt::Display for FleetRouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Iteration-forming policy every replica in the fleet runs — the PR 5
/// batching-policy seam carried over to the fleet floor. Static batching
/// has no fleet analogue (its flush timers belong to the single-platform
/// floor), so the fleet menu is continuous vs. chunked prefill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FleetBatchPolicy {
    /// Prefill-priority continuous batching (the PR 6 behaviour): when
    /// any admitted request still needs its prompt, the iteration
    /// prefills those requests whole while decoders idle.
    #[default]
    Continuous,
    /// Sarathi-style chunked prefill: each iteration spends at most
    /// `chunk_tokens` prompt tokens (split across requests) and
    /// co-schedules a decode step for every prefilled request, so long
    /// prompts stop stalling decode. On a disaggregated fleet the prefill
    /// pool chunks prompts and hands off exactly as the continuous floor
    /// does once the final chunk lands.
    ChunkedPrefill {
        /// Prefill-token budget per iteration.
        chunk_tokens: u32,
    },
}

impl FleetBatchPolicy {
    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FleetBatchPolicy::Continuous => "continuous",
            FleetBatchPolicy::ChunkedPrefill { .. } => "chunked",
        }
    }
}

impl fmt::Display for FleetBatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetBatchPolicy::Continuous => f.write_str("continuous"),
            FleetBatchPolicy::ChunkedPrefill { chunk_tokens } => {
                write!(f, "chunked:{chunk_tokens}")
            }
        }
    }
}

/// One fleet simulation's configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The replica topology.
    pub spec: FleetSpec,
    /// The model every replica serves.
    pub model: ModelConfig,
    /// Continuous-batching cap per replica.
    pub max_batch: u32,
    /// Number of requests to simulate.
    pub requests: u32,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Prompt length of every request, tokens.
    pub prompt_len: u32,
    /// Output tokens per request.
    pub new_tokens: u32,
    /// RNG seed for the arrival process.
    pub seed: u64,
    /// Latency SLO targets the run is scored against.
    pub slo: SloTargets,
    /// How arrivals and handoffs are dispatched.
    pub router: FleetRouterPolicy,
    /// How each replica forms iterations.
    pub policy: FleetBatchPolicy,
    /// Arrival-driven scaling; `None` keeps the fleet fixed.
    pub autoscale: Option<AutoscaleConfig>,
}

/// Why a [`FleetConfig`] cannot be simulated.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The spec has no groups.
    EmptyFleet,
    /// A group with zero replicas.
    ZeroCountGroup(
        /// The offending group's platform name.
        String,
    ),
    /// Prefill and Unified (or Decode and Unified) groups in one spec.
    MixedUnifiedAndPools,
    /// A disaggregated spec missing one of the two pools.
    MissingPool(
        /// The absent pool.
        PoolRole,
    ),
    /// `requests` was zero.
    ZeroRequests,
    /// `max_batch` was zero.
    ZeroMaxBatch,
    /// Chunked prefill with a zero token budget.
    ZeroChunkTokens,
    /// The arrival process has a non-positive or non-finite rate.
    BadArrivals(
        /// What is wrong with it.
        String,
    ),
    /// The autoscaler config is self-contradictory.
    BadAutoscale(
        /// What is wrong with it.
        String,
    ),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::EmptyFleet => write!(f, "fleet spec must declare at least one group"),
            FleetError::ZeroCountGroup(p) => {
                write!(f, "group '{p}' has zero replicas")
            }
            FleetError::MixedUnifiedAndPools => write!(
                f,
                "cannot mix unified groups with prefill=/decode= pools in one fleet"
            ),
            FleetError::MissingPool(role) => {
                write!(f, "disaggregated fleet needs a {} pool", role.label())
            }
            FleetError::ZeroRequests => f.write_str(check::ZERO_REQUESTS),
            FleetError::ZeroMaxBatch => f.write_str(&check::at_least_one("max_batch")),
            FleetError::ZeroChunkTokens => {
                f.write_str(&check::at_least_one("chunked-prefill chunk_tokens"))
            }
            FleetError::BadArrivals(msg) => write!(f, "bad arrival process: {msg}"),
            FleetError::BadAutoscale(msg) => write!(f, "bad autoscale config: {msg}"),
        }
    }
}

impl Error for FleetError {}

impl FleetConfig {
    /// Checks every knob the fleet simulator depends on, returning the
    /// first violation. The `simulate_fleet*` entry points panic on an
    /// invalid config; front ends wanting a graceful error path (the CLI
    /// does) validate first.
    ///
    /// # Errors
    ///
    /// Returns the first [`FleetError`] the configuration violates.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.spec.groups.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        if let Some(g) = self.spec.groups.iter().find(|g| g.count == 0) {
            return Err(FleetError::ZeroCountGroup(g.platform.name.clone()));
        }
        if self.spec.is_disaggregated() {
            if self.spec.groups.iter().any(|g| g.role == PoolRole::Unified) {
                return Err(FleetError::MixedUnifiedAndPools);
            }
            for role in [PoolRole::Prefill, PoolRole::Decode] {
                if self.spec.replicas_in(role) == 0 {
                    return Err(FleetError::MissingPool(role));
                }
            }
        }
        if self.requests == 0 {
            return Err(FleetError::ZeroRequests);
        }
        if self.max_batch == 0 {
            return Err(FleetError::ZeroMaxBatch);
        }
        if self.policy == (FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 0 }) {
            return Err(FleetError::ZeroChunkTokens);
        }
        self.arrivals.validate().map_err(FleetError::BadArrivals)?;
        if let Some(a) = &self.autoscale {
            a.validate().map_err(FleetError::BadAutoscale)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    fn valid() -> FleetConfig {
        FleetConfig {
            spec: FleetSpec::disaggregated(Platform::gh200(), 2, Platform::intel_h100(), 2),
            model: zoo::gpt2(),
            max_batch: 8,
            requests: 10,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 40.0 },
            prompt_len: 128,
            new_tokens: 8,
            seed: 1,
            slo: SloTargets::default(),
            router: FleetRouterPolicy::CostModelJsq,
            policy: FleetBatchPolicy::default(),
            autoscale: None,
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for s in [
            "intel_h100:4",
            "gh200:2,amd_a100:2",
            "prefill=gh200:2,decode=intel_h100:2",
            "prefill=mi300a:1,decode=amd_a100:3",
        ] {
            let spec = FleetSpec::parse(s).unwrap();
            assert_eq!(spec.label(), s);
            assert_eq!(FleetSpec::parse(&spec.label()).unwrap(), spec);
        }
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(FleetSpec::parse("").is_err());
        assert!(FleetSpec::parse("intel_h100").is_err());
        assert!(FleetSpec::parse("b200:4").is_err());
        assert!(FleetSpec::parse("gh200:two").is_err());
        assert!(FleetSpec::parse("encode=gh200:1").is_err());
    }

    #[test]
    fn untagged_spec_splits_into_pools() {
        let spec = FleetSpec::parse("gh200:2,intel_h100:2")
            .unwrap()
            .into_disaggregated()
            .unwrap();
        assert_eq!(spec.groups[0].role, PoolRole::Prefill);
        assert_eq!(spec.groups[1].role, PoolRole::Decode);
        // Already-tagged specs pass through; single groups cannot split.
        assert!(FleetSpec::parse("gh200:4")
            .unwrap()
            .into_disaggregated()
            .is_err());
    }

    #[test]
    fn valid_config_passes() {
        assert_eq!(valid().validate(), Ok(()));
    }

    #[test]
    fn each_violation_maps_to_its_error() {
        let mut c = valid();
        c.spec.groups.clear();
        assert_eq!(c.validate(), Err(FleetError::EmptyFleet));

        let mut c = valid();
        c.spec.groups[0].count = 0;
        assert!(matches!(c.validate(), Err(FleetError::ZeroCountGroup(_))));

        let mut c = valid();
        c.spec.groups[0].role = PoolRole::Unified;
        assert_eq!(c.validate(), Err(FleetError::MixedUnifiedAndPools));

        let mut c = valid();
        c.spec.groups[1].role = PoolRole::Prefill;
        assert_eq!(c.validate(), Err(FleetError::MissingPool(PoolRole::Decode)));

        let mut c = valid();
        c.requests = 0;
        assert_eq!(c.validate(), Err(FleetError::ZeroRequests));

        let mut c = valid();
        c.max_batch = 0;
        assert_eq!(c.validate(), Err(FleetError::ZeroMaxBatch));

        let mut c = valid();
        c.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 0 };
        assert_eq!(c.validate(), Err(FleetError::ZeroChunkTokens));

        let mut c = valid();
        c.arrivals = ArrivalProcess::Poisson { rate_per_s: 0.0 };
        assert!(matches!(c.validate(), Err(FleetError::BadArrivals(_))));

        let mut c = valid();
        c.autoscale = Some(AutoscaleConfig {
            min_per_pool: 5,
            max_per_pool: 2,
            ..AutoscaleConfig::default()
        });
        assert!(matches!(c.validate(), Err(FleetError::BadAutoscale(_))));
    }

    #[test]
    fn router_parse_round_trips_labels() {
        for r in [
            FleetRouterPolicy::RoundRobin,
            FleetRouterPolicy::JoinShortestQueue,
            FleetRouterPolicy::CostModelJsq,
        ] {
            assert_eq!(FleetRouterPolicy::parse(r.label()), Ok(r));
        }
        assert!(FleetRouterPolicy::parse("nope").is_err());
    }

    #[test]
    fn errors_render_actionable_messages() {
        assert!(FleetError::MixedUnifiedAndPools
            .to_string()
            .contains("cannot mix"));
        assert!(FleetError::MissingPool(PoolRole::Decode)
            .to_string()
            .contains("decode pool"));
    }
}
