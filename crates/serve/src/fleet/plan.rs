//! Capacity-frontier planner: which fleet, at what cost, for this traffic?
//!
//! The paper's north-star question — *how many of which platform for a
//! given user population at SLO X?* — is a search over fleet compositions,
//! and every point in that search is one fleet simulation. This module
//! owns the search space and the scoring; it deliberately does **not** own
//! the fan-out. [`enumerate`] produces a deterministic, index-ordered
//! candidate list and [`evaluate`] scores one candidate independently of
//! every other, so any executor that maps `evaluate` over the list in
//! input order — serially, or through `skip-bench`'s deterministic
//! harness at any worker count — produces byte-identical outcomes.
//!
//! Scoring is **billing-first**: every candidate that clears the SLO
//! attainment floor is *feasible*, and feasible candidates compete on
//! [`FleetReport::replica_seconds`] — the integral of live replicas over
//! the makespan, i.e. what the deployment actually rents. [`frontier`]
//! keeps the Pareto set over (replica-seconds, p95 end-to-end latency):
//! the fleets for which spending less means waiting longer. [`cheapest`]
//! is the frontier's economical end — the planner's one-line answer.

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::ModelConfig;

use crate::fleet::arrivals::ArrivalProcess;
use crate::fleet::autoscale::AutoscaleConfig;
use crate::fleet::floor::simulate_fleet;
use crate::fleet::observe::FleetReport;
use crate::fleet::spec::{FleetBatchPolicy, FleetConfig, FleetRouterPolicy, FleetSpec};
use crate::observe::SloTargets;

/// Period of the diurnal arrival cycle a peaked envelope simulates. Long
/// enough that an autoscaled candidate sees several scale decisions per
/// cycle, short enough that a few hundred simulated requests span one.
pub const DIURNAL_PERIOD: SimDuration = SimDuration::from_secs(8);

/// The traffic a candidate fleet must absorb: workload shape, offered
/// load, and the SLO the deployment is contractually scored against.
#[derive(Debug, Clone)]
pub struct TrafficEnvelope {
    /// The model every replica serves.
    pub model: ModelConfig,
    /// Mean offered load, requests/second.
    pub qps: f64,
    /// Peak offered load; `Some` turns the arrivals diurnal (base
    /// [`qps`](Self::qps), peak `peak_qps`, period [`DIURNAL_PERIOD`]),
    /// `None` keeps them Poisson at the mean.
    pub peak_qps: Option<f64>,
    /// Requests per evaluation — the sample the envelope is scored on.
    pub requests: u32,
    /// Prompt length of every request, tokens.
    pub prompt_len: u32,
    /// Output tokens per request.
    pub new_tokens: u32,
    /// Arrival-process seed shared by every candidate, so candidates are
    /// scored on the *same* request stream.
    pub seed: u64,
    /// The latency targets feasibility is judged against.
    pub slo: SloTargets,
}

impl TrafficEnvelope {
    /// The arrival process the envelope prescribes.
    #[must_use]
    pub fn arrivals(&self) -> ArrivalProcess {
        match self.peak_qps {
            Some(peak) if peak > self.qps => ArrivalProcess::Diurnal {
                base_rate_per_s: self.qps,
                peak_rate_per_s: peak,
                period: DIURNAL_PERIOD,
            },
            _ => ArrivalProcess::Poisson {
                rate_per_s: self.qps,
            },
        }
    }
}

/// The planner's search space and scoring knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// The traffic every candidate is scored against.
    pub envelope: TrafficEnvelope,
    /// Platform menu; candidates draw homogeneous fleets and
    /// prefill/decode pairings from this list, in order.
    pub platforms: Vec<Platform>,
    /// Ceiling on a candidate's *provisioned* replicas (autoscaled
    /// candidates may grow past it at their own billing peril).
    pub max_replicas: u32,
    /// Concurrent-request cap per replica.
    pub max_batch: u32,
    /// Minimum TTFT *and* e2e attainment a feasible fleet must reach.
    pub attainment_floor: f64,
    /// How arrivals and handoffs are dispatched in every candidate.
    pub router: FleetRouterPolicy,
    /// Iteration-forming policy every candidate's replicas run.
    pub policy: FleetBatchPolicy,
}

impl PlannerConfig {
    /// A planner over the paper-trio platform menu with the defaults the
    /// experiments use: up to 4 provisioned replicas, batch cap 8, a 95%
    /// attainment floor, cost-model JSQ routing, continuous batching.
    #[must_use]
    pub fn new(envelope: TrafficEnvelope) -> Self {
        PlannerConfig {
            envelope,
            platforms: Platform::paper_trio(),
            max_replicas: 4,
            max_batch: 8,
            attainment_floor: 0.95,
            router: FleetRouterPolicy::CostModelJsq,
            policy: FleetBatchPolicy::Continuous,
        }
    }
}

/// One point of the search space: a replica topology plus whether the
/// arrival-driven autoscaler is on.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCandidate {
    /// The provisioned topology.
    pub spec: FleetSpec,
    /// `true` runs the candidate under [`AutoscaleConfig::default`].
    pub autoscaled: bool,
}

impl PlanCandidate {
    /// Canonical candidate label: the spec label, `+auto` when autoscaled.
    #[must_use]
    pub fn label(&self) -> String {
        if self.autoscaled {
            format!("{}+auto", self.spec.label())
        } else {
            self.spec.label()
        }
    }
}

/// Enumerates the candidate fleet compositions for `cfg`, in a fixed
/// deterministic order: homogeneous fleets first (platform-menu order ×
/// ascending replica count), then every prefill×decode platform pairing ×
/// every split summing to at most `max_replicas` — each in a fixed and an
/// autoscaled variant. The order is part of the planner's contract: any
/// in-order map of [`evaluate`] over this list yields identical output.
#[must_use]
pub fn enumerate(cfg: &PlannerConfig) -> Vec<PlanCandidate> {
    let mut out = Vec::new();
    let mut push_both = |spec: FleetSpec| {
        out.push(PlanCandidate {
            spec: spec.clone(),
            autoscaled: false,
        });
        out.push(PlanCandidate {
            spec,
            autoscaled: true,
        });
    };
    for p in &cfg.platforms {
        for count in 1..=cfg.max_replicas {
            push_both(FleetSpec::homogeneous(p.clone(), count));
        }
    }
    for pf in &cfg.platforms {
        for dec in &cfg.platforms {
            for p_count in 1..cfg.max_replicas {
                for d_count in 1..=(cfg.max_replicas - p_count) {
                    push_both(FleetSpec::disaggregated(
                        pf.clone(),
                        p_count,
                        dec.clone(),
                        d_count,
                    ));
                }
            }
        }
    }
    out
}

/// The fleet configuration [`evaluate`] simulates for one candidate.
#[must_use]
pub fn fleet_config(cfg: &PlannerConfig, cand: &PlanCandidate) -> FleetConfig {
    FleetConfig {
        spec: cand.spec.clone(),
        model: cfg.envelope.model.clone(),
        max_batch: cfg.max_batch,
        requests: cfg.envelope.requests,
        arrivals: cfg.envelope.arrivals(),
        prompt_len: cfg.envelope.prompt_len,
        new_tokens: cfg.envelope.new_tokens,
        seed: cfg.envelope.seed,
        slo: cfg.envelope.slo,
        router: cfg.router,
        policy: cfg.policy,
        autoscale: cand.autoscaled.then(AutoscaleConfig::default),
    }
}

/// One scored candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// [`PlanCandidate::label`] of the candidate behind this outcome.
    pub label: String,
    /// `true` for split prefill/decode pools.
    pub disagg: bool,
    /// `true` when the candidate ran autoscaled.
    pub autoscaled: bool,
    /// Provisioned replicas (before any autoscaling).
    pub base_replicas: u32,
    /// Every request completed *and* both attainment axes cleared the
    /// planner's floor — the candidate can legally serve the envelope.
    pub feasible: bool,
    /// The full measurement, including the `replica_seconds` bill.
    pub report: FleetReport,
}

impl PlanOutcome {
    /// The capacity bill this outcome competes on.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.report.replica_seconds
    }
}

/// Scores one candidate against the envelope: simulates the fleet and
/// applies the feasibility floor. Pure in the candidate — evaluations of
/// distinct candidates share no state, which is what lets an executor
/// fan them out in any order.
///
/// # Panics
///
/// Panics if the resulting [`FleetConfig`] is invalid — [`enumerate`]
/// never produces such a candidate, so this only fires on hand-built ones.
#[must_use]
pub fn evaluate(cfg: &PlannerConfig, cand: &PlanCandidate) -> PlanOutcome {
    let fleet = fleet_config(cfg, cand);
    let report = simulate_fleet(&fleet);
    let feasible = report.completed == cfg.envelope.requests
        && report.slo.ttft_attainment >= cfg.attainment_floor
        && report.slo.e2e_attainment >= cfg.attainment_floor;
    PlanOutcome {
        label: cand.label(),
        disagg: cand.spec.is_disaggregated(),
        autoscaled: cand.autoscaled,
        base_replicas: cand.spec.total_replicas(),
        feasible,
        report,
    }
}

/// Runs the whole plan serially: [`enumerate`], then [`evaluate`] each
/// candidate in order. Parallel front ends (the `skip-bench` capacity
/// experiment, `skip plan --workers N`) instead map `evaluate` over
/// `enumerate`'s list through the deterministic harness; both paths
/// produce byte-identical outcome vectors.
#[must_use]
pub fn plan(cfg: &PlannerConfig) -> Vec<PlanOutcome> {
    enumerate(cfg).iter().map(|c| evaluate(cfg, c)).collect()
}

/// The cost-optimal frontier: feasible outcomes not dominated on the
/// (replica-seconds, p95 e2e) plane — an outcome is dropped only when
/// another feasible outcome is at least as cheap *and* at least as fast,
/// and strictly better on one axis. Returned sorted by ascending cost
/// (ties by ascending p95, then enumeration order), so the first entry is
/// [`cheapest`] and the last is the latency-optimal end.
#[must_use]
pub fn frontier(outcomes: &[PlanOutcome]) -> Vec<&PlanOutcome> {
    let dominates = |a: &PlanOutcome, b: &PlanOutcome| {
        let (c, e) = (a.cost() <= b.cost(), a.report.e2e_p95 <= b.report.e2e_p95);
        c && e && (a.cost() < b.cost() || a.report.e2e_p95 < b.report.e2e_p95)
    };
    let mut front: Vec<&PlanOutcome> = outcomes
        .iter()
        .filter(|o| o.feasible)
        .filter(|o| {
            !outcomes
                .iter()
                .any(|other| other.feasible && dominates(other, o))
        })
        .collect();
    front.sort_by(|a, b| {
        a.cost()
            .total_cmp(&b.cost())
            .then(a.report.e2e_p95.cmp(&b.report.e2e_p95))
    });
    front
}

/// The cheapest feasible outcome — minimum replica-seconds, ties broken
/// by p95 e2e and then by enumeration order. `None` when no candidate
/// clears the floor (the envelope needs a bigger `max_replicas`).
#[must_use]
pub fn cheapest(outcomes: &[PlanOutcome]) -> Option<&PlanOutcome> {
    outcomes
        .iter()
        .filter(|o| o.feasible)
        .fold(None, |best, o| match best {
            Some(b) if (b.cost(), b.report.e2e_p95) <= (o.cost(), o.report.e2e_p95) => Some(b),
            _ => Some(o),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    fn small_planner() -> PlannerConfig {
        let mut cfg = PlannerConfig::new(TrafficEnvelope {
            model: zoo::gpt2(),
            qps: 60.0,
            peak_qps: None,
            requests: 24,
            prompt_len: 128,
            new_tokens: 4,
            seed: 7,
            slo: SloTargets {
                ttft: Some(SimDuration::from_millis(400)),
                e2e: Some(SimDuration::from_millis(2000)),
            },
        });
        cfg.max_replicas = 3;
        cfg
    }

    #[test]
    fn enumeration_is_deterministic_ordered_and_valid() {
        let cfg = small_planner();
        let cands = enumerate(&cfg);
        assert_eq!(cands, enumerate(&cfg), "same config, same candidate list");
        // 3 platforms × 3 counts × 2 variants homogeneous, plus
        // 9 pairings × 3 splits (1+1, 1+2, 2+1) × 2 variants disaggregated.
        assert_eq!(cands.len(), 3 * 3 * 2 + 9 * 3 * 2);
        for c in &cands {
            assert!(c.spec.total_replicas() <= cfg.max_replicas, "{}", c.label());
            assert_eq!(fleet_config(&cfg, c).validate(), Ok(()), "{}", c.label());
        }
        // Labels are unique — every candidate is a distinct fleet.
        let mut labels: Vec<String> = cands.iter().map(PlanCandidate::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cands.len());
    }

    #[test]
    fn peaked_envelopes_turn_diurnal() {
        let mut cfg = small_planner();
        assert!(matches!(
            cfg.envelope.arrivals(),
            ArrivalProcess::Poisson { .. }
        ));
        cfg.envelope.peak_qps = Some(cfg.envelope.qps * 4.0);
        assert!(matches!(
            cfg.envelope.arrivals(),
            ArrivalProcess::Diurnal { .. }
        ));
        // A "peak" at or below the mean degenerates back to Poisson.
        cfg.envelope.peak_qps = Some(cfg.envelope.qps);
        assert!(matches!(
            cfg.envelope.arrivals(),
            ArrivalProcess::Poisson { .. }
        ));
    }

    #[test]
    fn attainment_floor_separates_feasible_from_infeasible() {
        let cfg = small_planner();
        let starved = PlanCandidate {
            spec: FleetSpec::homogeneous(Platform::amd_a100(), 1),
            autoscaled: false,
        };
        let mut strict = cfg.clone();
        strict.envelope.slo = SloTargets {
            ttft: Some(SimDuration::from_nanos(1)),
            e2e: None,
        };
        assert!(
            !evaluate(&strict, &starved).feasible,
            "a 1ns TTFT target is unattainable"
        );
        let mut generous = cfg;
        generous.envelope.slo = SloTargets {
            ttft: Some(SimDuration::from_secs(3600)),
            e2e: Some(SimDuration::from_secs(3600)),
        };
        let o = evaluate(&generous, &starved);
        assert!(o.feasible, "an hour-long target is trivially met");
        assert!(o.cost() > 0.0, "completed runs bill replica-seconds");
    }

    #[test]
    fn plan_finds_a_feasible_fleet_and_prices_it() {
        let cfg = small_planner();
        let outcomes = plan(&cfg);
        assert_eq!(outcomes.len(), enumerate(&cfg).len());
        let best = cheapest(&outcomes).expect("some fleet serves this envelope");
        assert!(best.feasible);
        // Minimality: nothing feasible is strictly cheaper.
        for o in outcomes.iter().filter(|o| o.feasible) {
            assert!(
                best.cost() <= o.cost(),
                "{} undercut {}",
                o.label,
                best.label
            );
        }
    }

    #[test]
    fn frontier_is_sorted_feasible_and_mutually_nondominated() {
        let cfg = small_planner();
        let outcomes = plan(&cfg);
        let front = frontier(&outcomes);
        assert!(!front.is_empty(), "a feasible plan implies a frontier");
        assert_eq!(
            front[0].label,
            cheapest(&outcomes).expect("feasible").label,
            "the frontier starts at the cheapest feasible fleet"
        );
        for w in front.windows(2) {
            assert!(w[0].cost() <= w[1].cost(), "frontier sorted by cost");
            assert!(
                w[1].report.e2e_p95 <= w[0].report.e2e_p95,
                "paying more must buy latency on the frontier: {} vs {}",
                w[0].label,
                w[1].label
            );
        }
        for a in &front {
            assert!(a.feasible);
            for b in &front {
                let strictly_better = b.cost() < a.cost() && b.report.e2e_p95 < a.report.e2e_p95;
                assert!(
                    !strictly_better,
                    "{} strictly dominates {} on the frontier",
                    b.label, a.label
                );
            }
        }
    }

    #[test]
    fn infeasible_sets_have_no_frontier() {
        let mut cfg = small_planner();
        cfg.envelope.slo = SloTargets {
            ttft: Some(SimDuration::from_nanos(1)),
            e2e: None,
        };
        cfg.platforms.truncate(1);
        cfg.max_replicas = 1;
        let outcomes = plan(&cfg);
        assert!(cheapest(&outcomes).is_none());
        assert!(frontier(&outcomes).is_empty());
    }
}
