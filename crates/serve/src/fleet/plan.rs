//! Capacity-frontier planner: which fleet, at what cost, for this traffic?
//!
//! The paper's north-star question — *how many of which platform for a
//! given user population at SLO X?* — is a search over fleet compositions,
//! and every point in that search is one fleet simulation. This module
//! owns the search space and the scoring; it deliberately does **not** own
//! the fan-out. [`enumerate`] produces a deterministic, index-ordered
//! candidate list and [`evaluate`] scores one candidate independently of
//! every other, so any executor that maps `evaluate` over the list in
//! input order — serially, or through `skip-bench`'s deterministic
//! harness at any worker count — produces byte-identical outcomes.
//!
//! Scoring is **billing-first**: every candidate that clears the SLO
//! attainment floor is *feasible*, and feasible candidates compete on
//! [`FleetReport::replica_seconds`] — the integral of live replicas over
//! the makespan, i.e. what the deployment actually rents. [`frontier`]
//! keeps the Pareto set over (replica-seconds, p95 end-to-end latency):
//! the fleets for which spending less means waiting longer. [`cheapest`]
//! is the frontier's economical end — the planner's one-line answer.
//!
//! At larger ceilings the exhaustive sweep is dominated by candidates
//! whose outcome is already decided, so the production path is the
//! **pruned generational sweep** ([`plan_pruned`] / [`sweep_with`]):
//! candidates run in waves of ascending provisioned-replica count, and
//! [`SweepBounds`] — analytic per-candidate lower bounds plus the
//! feasible incumbents of completed waves — resolves a candidate without
//! a full simulation whenever arithmetic already knows the answer
//! ([`Resolution::PrunedInfeasible`], [`Resolution::PrunedDominated`]) or
//! an early-aborted run decides it mid-flight ([`Resolution::Aborted`]).
//! Pruning never touches [`frontier`]/[`cheapest`]: every skipped or
//! aborted candidate is provably infeasible or provably dominated by a
//! fully-simulated incumbent, so the pruned sweep's frontier is
//! byte-identical to the exhaustive one (see DESIGN.md §2.4).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};
use skip_hw::Platform;
use skip_llm::ModelConfig;
use skip_mem::KvSpec;

use crate::config::check;
use crate::fleet::arrivals::ArrivalProcess;
use crate::fleet::autoscale::AutoscaleConfig;
use crate::fleet::floor::{simulate_fleet, simulate_fleet_bounded};
use crate::fleet::observe::FleetReport;
use crate::fleet::spec::{FleetBatchPolicy, FleetConfig, FleetRouterPolicy, FleetSpec, PoolRole};
use crate::latency::LatencyModel;
use crate::observe::{SloReport, SloTargets};
use crate::stop::{allowed_misses, StopCondition};

/// Period of the diurnal arrival cycle a peaked envelope simulates. Long
/// enough that an autoscaled candidate sees several scale decisions per
/// cycle, short enough that a few hundred simulated requests span one.
pub const DIURNAL_PERIOD: SimDuration = SimDuration::from_secs(8);

/// Relative slack applied wherever an analytic bound is compared against
/// a simulated quantity, absorbing the f64 rounding of unit-price
/// divisions so a borderline candidate is simulated rather than
/// mis-pruned.
const BOUND_SLACK: f64 = 1e-9;

/// The traffic a candidate fleet must absorb: workload shape, offered
/// load, and the SLO the deployment is contractually scored against.
#[derive(Debug, Clone)]
pub struct TrafficEnvelope {
    /// The model every replica serves.
    pub model: ModelConfig,
    /// Mean offered load, requests/second.
    pub qps: f64,
    /// Peak offered load; `Some` turns the arrivals diurnal (base
    /// [`qps`](Self::qps), peak `peak_qps`, period [`DIURNAL_PERIOD`]),
    /// `None` keeps them Poisson at the mean.
    pub peak_qps: Option<f64>,
    /// Requests per evaluation — the sample the envelope is scored on.
    pub requests: u32,
    /// Prompt length of every request, tokens.
    pub prompt_len: u32,
    /// Output tokens per request.
    pub new_tokens: u32,
    /// Arrival-process seed shared by every candidate, so candidates are
    /// scored on the *same* request stream.
    pub seed: u64,
    /// The latency targets feasibility is judged against.
    pub slo: SloTargets,
}

impl TrafficEnvelope {
    /// The arrival process the envelope prescribes.
    #[must_use]
    pub fn arrivals(&self) -> ArrivalProcess {
        match self.peak_qps {
            Some(peak) if peak > self.qps => ArrivalProcess::Diurnal {
                base_rate_per_s: self.qps,
                peak_rate_per_s: peak,
                period: DIURNAL_PERIOD,
            },
            _ => ArrivalProcess::Poisson {
                rate_per_s: self.qps,
            },
        }
    }
}

/// Why a [`PlannerConfig`] cannot be planned — the planner twin of
/// [`ConfigError`](crate::ConfigError) and
/// [`FleetError`](crate::FleetError), surfaced by
/// [`PlannerConfig::validate`] before any candidate is built.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// `max_replicas` was zero — the search space is empty.
    ZeroMaxReplicas,
    /// `attainment_floor` outside `(0, 1]` (a zero floor makes every
    /// candidate vacuously feasible; above 1 none can ever be).
    BadAttainmentFloor(
        /// The offending floor.
        f64,
    ),
    /// The envelope scores zero requests — nothing to simulate.
    EmptyEnvelope,
    /// The envelope's offered load was not positive and finite.
    BadLoad(
        /// The offending req/s rate.
        f64,
    ),
    /// The platform menu is empty — no candidate can be enumerated.
    NoPlatforms,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ZeroMaxReplicas => f.write_str(&check::at_least_one("max replicas")),
            PlanError::BadAttainmentFloor(v) => {
                write!(f, "attainment floor must be in (0, 1], got {v}")
            }
            PlanError::EmptyEnvelope => f.write_str(check::ZERO_REQUESTS),
            PlanError::BadLoad(v) => f.write_str(&check::positive_rate("offered load", *v)),
            PlanError::NoPlatforms => write!(f, "the platform menu is empty"),
        }
    }
}

impl Error for PlanError {}

/// The planner's search space and scoring knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// The traffic every candidate is scored against.
    pub envelope: TrafficEnvelope,
    /// Platform menu; candidates draw homogeneous fleets and
    /// prefill/decode pairings from this list, in order.
    pub platforms: Vec<Platform>,
    /// Ceiling on a candidate's *provisioned* replicas (autoscaled
    /// candidates may grow past it at their own billing peril).
    pub max_replicas: u32,
    /// Concurrent-request cap per replica.
    pub max_batch: u32,
    /// Minimum TTFT *and* e2e attainment a feasible fleet must reach.
    pub attainment_floor: f64,
    /// How arrivals and handoffs are dispatched in every candidate.
    pub router: FleetRouterPolicy,
    /// Iteration-forming policy every candidate's replicas run.
    pub policy: FleetBatchPolicy,
}

impl PlannerConfig {
    /// A planner over the paper-trio platform menu with the defaults the
    /// experiments use: up to 4 provisioned replicas, batch cap 8, a 95%
    /// attainment floor, cost-model JSQ routing, continuous batching.
    #[must_use]
    pub fn new(envelope: TrafficEnvelope) -> Self {
        PlannerConfig {
            envelope,
            platforms: Platform::paper_trio(),
            max_replicas: 4,
            max_batch: 8,
            attainment_floor: 0.95,
            router: FleetRouterPolicy::CostModelJsq,
            policy: FleetBatchPolicy::Continuous,
        }
    }

    /// Checks the planner for configurations no candidate could be built
    /// from, so front ends get an actionable error instead of a panic
    /// deep inside [`fleet_config`].
    ///
    /// # Errors
    ///
    /// The first [`PlanError`] found, in declaration order.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.max_replicas == 0 {
            return Err(PlanError::ZeroMaxReplicas);
        }
        if !(self.attainment_floor > 0.0 && self.attainment_floor <= 1.0) {
            return Err(PlanError::BadAttainmentFloor(self.attainment_floor));
        }
        if self.envelope.requests == 0 {
            return Err(PlanError::EmptyEnvelope);
        }
        if !(self.envelope.qps.is_finite() && self.envelope.qps > 0.0) {
            return Err(PlanError::BadLoad(self.envelope.qps));
        }
        if self.platforms.is_empty() {
            return Err(PlanError::NoPlatforms);
        }
        Ok(())
    }
}

/// One point of the search space: a replica topology plus whether the
/// arrival-driven autoscaler is on.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCandidate {
    /// The provisioned topology.
    pub spec: FleetSpec,
    /// `true` runs the candidate under [`AutoscaleConfig::default`].
    pub autoscaled: bool,
}

impl PlanCandidate {
    /// Canonical candidate label: the spec label, `+auto` when autoscaled.
    #[must_use]
    pub fn label(&self) -> String {
        if self.autoscaled {
            format!("{}+auto", self.spec.label())
        } else {
            self.spec.label()
        }
    }
}

/// Enumerates the candidate fleet compositions for `cfg`, in a fixed
/// deterministic order: homogeneous fleets first (platform-menu order ×
/// ascending replica count), then every prefill×decode platform pairing ×
/// every split summing to at most `max_replicas` — each in a fixed and an
/// autoscaled variant. The order is part of the planner's contract: any
/// in-order map of [`evaluate`] over this list yields identical output.
#[must_use]
pub fn enumerate(cfg: &PlannerConfig) -> Vec<PlanCandidate> {
    let mut out = Vec::new();
    let mut push_both = |spec: FleetSpec| {
        out.push(PlanCandidate {
            spec: spec.clone(),
            autoscaled: false,
        });
        out.push(PlanCandidate {
            spec,
            autoscaled: true,
        });
    };
    for p in &cfg.platforms {
        for count in 1..=cfg.max_replicas {
            push_both(FleetSpec::homogeneous(p.clone(), count));
        }
    }
    for pf in &cfg.platforms {
        for dec in &cfg.platforms {
            for p_count in 1..cfg.max_replicas {
                for d_count in 1..=(cfg.max_replicas - p_count) {
                    push_both(FleetSpec::disaggregated(
                        pf.clone(),
                        p_count,
                        dec.clone(),
                        d_count,
                    ));
                }
            }
        }
    }
    out
}

/// [`enumerate`]'s candidates regrouped into the pruned sweep's waves:
/// `waves(cfg)[n - 1]` holds every candidate provisioning exactly `n`
/// total replicas, in enumeration order. Waves run cheapest-first so the
/// earliest (smallest) fleets seed the incumbents that prune the large
/// tail of the space.
#[must_use]
pub fn waves(cfg: &PlannerConfig) -> Vec<Vec<PlanCandidate>> {
    let buckets = cfg.max_replicas.max(1) as usize;
    let mut out: Vec<Vec<PlanCandidate>> = (0..buckets).map(|_| Vec::new()).collect();
    for c in enumerate(cfg) {
        let n = (c.spec.total_replicas().max(1) as usize).min(buckets);
        out[n - 1].push(c);
    }
    out
}

/// The fleet configuration [`evaluate`] simulates for one candidate.
#[must_use]
pub fn fleet_config(cfg: &PlannerConfig, cand: &PlanCandidate) -> FleetConfig {
    FleetConfig {
        spec: cand.spec.clone(),
        model: cfg.envelope.model.clone(),
        max_batch: cfg.max_batch,
        requests: cfg.envelope.requests,
        arrivals: cfg.envelope.arrivals(),
        prompt_len: cfg.envelope.prompt_len,
        new_tokens: cfg.envelope.new_tokens,
        seed: cfg.envelope.seed,
        slo: cfg.envelope.slo,
        router: cfg.router,
        policy: cfg.policy,
        autoscale: cand.autoscaled.then(AutoscaleConfig::default),
    }
}

/// How the sweep resolved one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Resolution {
    /// Fully simulated over the whole envelope — the only resolution that
    /// can be feasible, and the one every exhaustive [`evaluate`] reports.
    #[default]
    Simulated,
    /// Simulation started but a [`StopCondition`] budget blew mid-run:
    /// the candidate provably misses the attainment floor or provably
    /// out-bills a dominating incumbent.
    Aborted,
    /// Rejected by the analytic service-demand bound without simulating:
    /// the envelope's SLO-met work cannot fit the candidate's capacity.
    PrunedInfeasible,
    /// Skipped without simulating: a feasible incumbent dominates the
    /// candidate's best-possible (cost, e2e p95) point.
    PrunedDominated,
}

/// One scored candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// [`PlanCandidate::label`] of the candidate behind this outcome.
    pub label: String,
    /// `true` for split prefill/decode pools.
    pub disagg: bool,
    /// `true` when the candidate ran autoscaled.
    pub autoscaled: bool,
    /// Provisioned replicas (before any autoscaling).
    pub base_replicas: u32,
    /// Every request completed *and* both attainment axes cleared the
    /// planner's floor — the candidate can legally serve the envelope.
    pub feasible: bool,
    /// The full measurement, including the `replica_seconds` bill. For
    /// non-[`Simulated`](Resolution::Simulated) resolutions this is a
    /// truncated or empty report with its `aborted` flag set.
    pub report: FleetReport,
    /// How the sweep resolved this candidate.
    #[serde(default)]
    pub resolution: Resolution,
}

impl PlanOutcome {
    /// The capacity bill this outcome competes on.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.report.replica_seconds
    }
}

/// Scores one candidate against the envelope: simulates the fleet and
/// applies the feasibility floor. Pure in the candidate — evaluations of
/// distinct candidates share no state, which is what lets an executor
/// fan them out in any order.
///
/// # Panics
///
/// Panics if the resulting [`FleetConfig`] is invalid — [`enumerate`]
/// never produces such a candidate, so this only fires on hand-built ones.
#[must_use]
pub fn evaluate(cfg: &PlannerConfig, cand: &PlanCandidate) -> PlanOutcome {
    let fleet = fleet_config(cfg, cand);
    let report = simulate_fleet(&fleet);
    outcome_of(cfg, cand, report)
}

/// Scores one candidate under the sweep's accumulated `bounds`: skips it
/// outright when the bounds already decide it, otherwise simulates with
/// the bounds' [`StopCondition`] armed. Pure in (candidate, bounds) —
/// a wave's candidates share one frozen `bounds`, so an executor can fan
/// them out in any order and still match the serial sweep byte for byte.
///
/// # Panics
///
/// Panics if the resulting [`FleetConfig`] is invalid (hand-built
/// candidates only, as with [`evaluate`]).
#[must_use]
pub fn evaluate_bounded(
    cfg: &PlannerConfig,
    cand: &PlanCandidate,
    bounds: &SweepBounds,
) -> PlanOutcome {
    match bounds.decide(cand) {
        Decision::Skip(resolution) => PlanOutcome {
            label: cand.label(),
            disagg: cand.spec.is_disaggregated(),
            autoscaled: cand.autoscaled,
            base_replicas: cand.spec.total_replicas(),
            feasible: false,
            report: skipped_report(cfg),
            resolution,
        },
        Decision::Simulate(stop) => {
            let fleet = fleet_config(cfg, cand);
            let report = simulate_fleet_bounded(&fleet, stop);
            outcome_of(cfg, cand, report)
        }
    }
}

/// Folds a (possibly aborted) report into a [`PlanOutcome`]. An aborted
/// report is never feasible: its metrics cover only a prefix of the
/// envelope.
fn outcome_of(cfg: &PlannerConfig, cand: &PlanCandidate, report: FleetReport) -> PlanOutcome {
    let feasible = !report.aborted
        && report.completed == cfg.envelope.requests
        && report.slo.ttft_attainment >= cfg.attainment_floor
        && report.slo.e2e_attainment >= cfg.attainment_floor;
    let resolution = if report.aborted {
        Resolution::Aborted
    } else {
        Resolution::Simulated
    };
    PlanOutcome {
        label: cand.label(),
        disagg: cand.spec.is_disaggregated(),
        autoscaled: cand.autoscaled,
        base_replicas: cand.spec.total_replicas(),
        feasible,
        report,
        resolution,
    }
}

/// The empty, `aborted`-flagged report a pruned candidate carries: zero
/// completions, zero bill — honest about having simulated nothing.
fn skipped_report(cfg: &PlannerConfig) -> FleetReport {
    FleetReport {
        completed: 0,
        ttft_p50: SimDuration::ZERO,
        ttft_p95: SimDuration::ZERO,
        ttft_p99: SimDuration::ZERO,
        e2e_p50: SimDuration::ZERO,
        e2e_p95: SimDuration::ZERO,
        throughput_tok_s: 0.0,
        makespan: SimDuration::ZERO,
        slo: SloReport::evaluate(
            cfg.envelope.slo,
            &[],
            cfg.envelope.new_tokens.max(1),
            SimDuration::ZERO,
        ),
        handoffs: 0,
        handoff_bytes: 0,
        handoff_wait_p50: SimDuration::ZERO,
        handoff_wait_p95: SimDuration::ZERO,
        handoff_transfer_total: SimDuration::ZERO,
        scale_ups: 0,
        scale_downs: 0,
        peak_replicas: 0,
        replica_seconds: 0.0,
        aborted: true,
    }
}

/// How many candidates the pruned sweep resolved each way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SweepStats {
    /// Candidates enumerated.
    pub candidates: u32,
    /// Fully simulated over the whole envelope.
    pub simulated: u32,
    /// Simulations stopped early by a blown budget.
    pub aborted: u32,
    /// Skipped by the analytic service-demand bound.
    pub pruned_infeasible: u32,
    /// Skipped by bound-point dominance against an incumbent.
    pub pruned_dominated: u32,
}

impl SweepStats {
    /// Candidates resolved without running the full envelope — the
    /// pruning win the sweep reports.
    #[must_use]
    pub fn resolved_without_full_simulation(&self) -> u32 {
        self.aborted + self.pruned_infeasible + self.pruned_dominated
    }

    fn count(&mut self, r: Resolution) {
        match r {
            Resolution::Simulated => self.simulated += 1,
            Resolution::Aborted => self.aborted += 1,
            Resolution::PrunedInfeasible => self.pruned_infeasible += 1,
            Resolution::PrunedDominated => self.pruned_dominated += 1,
        }
    }
}

/// A pruned generational sweep's full result: one outcome per enumerated
/// candidate (in enumeration order, exactly like [`plan`]) plus the
/// resolution tally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSweep {
    /// One outcome per candidate, in [`enumerate`] order.
    pub outcomes: Vec<PlanOutcome>,
    /// How the sweep resolved them.
    pub stats: SweepStats,
}

/// What [`SweepBounds::decide`] concluded for one candidate.
enum Decision {
    /// Resolved without simulating; carries the resolution to record.
    Skip(Resolution),
    /// Simulate under this stop condition.
    Simulate(StopCondition),
}

/// A feasible incumbent's scoring point.
#[derive(Debug, Clone, Copy)]
struct Incumbent {
    cost_s: f64,
    e2e_ns: f64,
}

/// Per-platform unit prices for the analytic bounds, all in nanoseconds.
#[derive(Debug, Clone)]
struct PlatformPrice {
    name: String,
    /// Cheapest per-request share of any prefill iteration:
    /// `min_b prefill(b, prompt) / b`.
    prefill_unit_ns: f64,
    /// Cheapest per-token share of any decode step:
    /// `min_{b, ctx} decode_step(b, ctx) / b` over the envelope's context
    /// range.
    decode_unit_ns: f64,
    /// Cheapest whole prefill iteration — a request waits at least this
    /// long for its first token.
    prefill_iter_min_ns: f64,
    /// Cheapest whole decode step — each subsequent token waits at least
    /// this long.
    decode_iter_min_ns: f64,
}

/// Analytic lower bounds plus the feasible incumbents of completed waves
/// — everything [`evaluate_bounded`] consults before (and while)
/// simulating a candidate.
///
/// Frozen within a wave and updated only at wave boundaries
/// ([`absorb`](Self::absorb)), which is what keeps the pruned sweep
/// byte-identical at any worker count: a candidate's fate depends only on
/// the envelope and on *completed* waves, never on in-flight siblings.
#[derive(Debug, Clone)]
pub struct SweepBounds {
    /// Last arrival instant, seconds — the bill window every feasible
    /// fixed fleet must at least rent (billing runs from time zero).
    t_last_s: f64,
    /// Arrival span `t_last - t_first`, nanoseconds.
    span_ns: f64,
    /// Fewest requests that must meet each set SLO axis for feasibility.
    met_min: u32,
    /// Decode steps after the prefill-produced first token.
    steps: u32,
    slo_ttft_ns: Option<f64>,
    slo_e2e_ns: Option<f64>,
    /// Service-demand bounds apply only to continuous batching, whose
    /// iteration prices the unit prices provably under-estimate.
    analytic: bool,
    /// Miss budgets every bounded simulation runs under.
    stop_base: StopCondition,
    /// Autoscaler pool limits (from [`AutoscaleConfig::default`], which
    /// is what autoscaled candidates run).
    min_per_pool: u32,
    max_per_pool: u32,
    /// KV bytes one handoff moves (prompt + first token, whole blocks).
    handoff_bytes: u64,
    prices: Vec<PlatformPrice>,
    incumbents: Vec<Incumbent>,
}

impl SweepBounds {
    /// Prices the envelope and the platform menu. One arrival-stream
    /// generation and `O(platforms × max_batch × new_tokens)` memoized
    /// latency-table lookups — negligible next to a single candidate
    /// simulation.
    #[must_use]
    pub fn new(cfg: &PlannerConfig) -> Self {
        let env = &cfg.envelope;
        let arrivals = env.arrivals().generate(
            env.requests as usize,
            env.prompt_len,
            env.new_tokens,
            env.seed,
        );
        let at_ns = |t: SimTime| t.as_nanos() as f64;
        let t_first_ns = arrivals.first().map_or(0.0, |r| at_ns(r.arrival));
        let t_last_ns = arrivals.last().map_or(0.0, |r| at_ns(r.arrival));
        let allowed = allowed_misses(env.requests, cfg.attainment_floor);
        let auto = AutoscaleConfig::default();
        let kv = KvSpec::for_model(&env.model, KvSpec::DEFAULT_BLOCK_TOKENS);
        SweepBounds {
            t_last_s: t_last_ns / 1e9,
            span_ns: t_last_ns - t_first_ns,
            met_min: env.requests - allowed,
            steps: env.new_tokens.max(1) - 1,
            slo_ttft_ns: env.slo.ttft.map(|t| t.as_nanos_f64()),
            slo_e2e_ns: env.slo.e2e.map(|t| t.as_nanos_f64()),
            analytic: matches!(cfg.policy, FleetBatchPolicy::Continuous),
            stop_base: StopCondition::for_attainment(env.requests, cfg.attainment_floor, env.slo),
            min_per_pool: auto.min_per_pool,
            max_per_pool: auto.max_per_pool,
            handoff_bytes: kv.handoff_bytes(u64::from(env.prompt_len).saturating_add(1)),
            prices: cfg
                .platforms
                .iter()
                .scan(Vec::new(), |seen: &mut Vec<String>, p| {
                    if seen.contains(&p.name) {
                        Some(None)
                    } else {
                        seen.push(p.name.clone());
                        Some(Some(price_platform(p, cfg)))
                    }
                })
                .flatten()
                .collect(),
            incumbents: Vec::new(),
        }
    }

    /// Folds a completed wave's outcomes into the incumbent set. Called
    /// once per wave boundary by [`sweep_with`]; only feasible outcomes
    /// matter, and weakly-dominated points are dropped (they add no
    /// pruning power).
    pub fn absorb(&mut self, outcomes: &[PlanOutcome]) {
        for o in outcomes.iter().filter(|o| o.feasible) {
            let cost_s = o.cost();
            let e2e_ns = o.report.e2e_p95.as_nanos_f64();
            if self
                .incumbents
                .iter()
                .any(|i| i.cost_s <= cost_s && i.e2e_ns <= e2e_ns)
            {
                continue;
            }
            self.incumbents
                .retain(|i| !(cost_s <= i.cost_s && e2e_ns <= i.e2e_ns));
            self.incumbents.push(Incumbent { cost_s, e2e_ns });
        }
    }

    fn decide(&self, cand: &PlanCandidate) -> Decision {
        if self.utilization_infeasible(cand) {
            return Decision::Skip(Resolution::PrunedInfeasible);
        }
        let lb_cost_s = self.cost_floor_s(cand);
        let lb_e2e_ns = self.e2e_floor_ns(cand);
        if let Some(e2e_lb) = lb_e2e_ns {
            // A feasible incumbent dominating the candidate's *best
            // possible* point dominates its true point too (true cost and
            // true p95 both sit at or above their bounds).
            let dominated = self.incumbents.iter().any(|i| {
                i.cost_s <= lb_cost_s
                    && i.e2e_ns <= e2e_lb
                    && (i.cost_s < lb_cost_s || i.e2e_ns < e2e_lb)
            });
            if dominated {
                return Decision::Skip(Resolution::PrunedDominated);
            }
        }
        let mut stop = self.stop_base;
        // In-flight cost cap: the cheapest incumbent at least as fast as
        // the candidate can ever be. Once the accrued bill exceeds it the
        // incumbent strictly dominates on cost, so the run may stop.
        stop.cost_ceiling = lb_e2e_ns.and_then(|e2e_lb| {
            self.incumbents
                .iter()
                .filter(|i| i.e2e_ns <= e2e_lb)
                .map(|i| i.cost_s)
                .fold(None, |m: Option<f64>, c| Some(m.map_or(c, |m| m.min(c))))
        });
        Decision::Simulate(stop)
    }

    /// Effective pool sizes for capacity (autoscale can grow a pool to
    /// `max_per_pool`) and the cheapest relevant unit prices. Returns
    /// `None` when any pool platform is missing from the price table —
    /// hand-built candidates off the menu are simply not pruned.
    fn pool_prices(&self, cand: &PlanCandidate, role: PoolRole) -> Option<(f64, &PlatformPrice)> {
        let groups: Vec<_> = cand.spec.groups.iter().filter(|g| g.role == role).collect();
        if groups.is_empty() {
            return None;
        }
        let base: u32 = groups.iter().map(|g| g.count).sum();
        let capacity = if cand.autoscaled {
            base.max(self.max_per_pool)
        } else {
            base
        };
        // Cheapest platform in the pool lower-bounds every member.
        let mut best: Option<&PlatformPrice> = None;
        for g in &groups {
            let p = self.prices.iter().find(|p| p.name == g.platform.name)?;
            best = Some(match best {
                Some(b)
                    if b.prefill_unit_ns + b.decode_unit_ns
                        <= p.prefill_unit_ns + p.decode_unit_ns =>
                {
                    b
                }
                _ => p,
            });
        }
        best.map(|b| (f64::from(capacity), b))
    }

    /// The analytic service-demand bound: if the work the SLO-met share
    /// of the envelope *must* perform cannot fit the candidate's
    /// replica-time inside the deadline window, no schedule is feasible.
    fn utilization_infeasible(&self, cand: &PlanCandidate) -> bool {
        if !self.analytic || self.met_min == 0 {
            return false;
        }
        let met = f64::from(self.met_min);
        let steps = f64::from(self.steps);
        // Per-request latency floors: when even the cheapest possible
        // iteration chain overshoots a target, every request misses it,
        // and the floor (which needs `met_min >= 1`) is unreachable.
        let first_token_role = if cand.spec.is_disaggregated() {
            PoolRole::Prefill
        } else {
            PoolRole::Unified
        };
        if let (Some(ttft), Some(pf_iter)) = (
            self.slo_ttft_ns,
            self.cheapest_iter(cand, first_token_role, |p| p.prefill_iter_min_ns),
        ) {
            if pf_iter * (1.0 - BOUND_SLACK) > ttft {
                return true;
            }
        }
        if let (Some(e2e), Some(lb)) = (self.slo_e2e_ns, self.e2e_floor_ns(cand)) {
            if lb > e2e {
                return true;
            }
        }
        // `met` requests each fit inside `[first_arrival, own_arrival +
        // slo]`, so their work fits `replicas × (span + slo)`.
        let exceeds = |work_ns: f64, replicas: f64, slo_ns: f64| {
            work_ns > replicas * (self.span_ns + slo_ns) * (1.0 + BOUND_SLACK)
        };
        if cand.spec.is_disaggregated() {
            let Some((r_pf, pf)) = self.pool_prices(cand, PoolRole::Prefill) else {
                return false;
            };
            let Some((r_dec, dec)) = self.pool_prices(cand, PoolRole::Decode) else {
                return false;
            };
            if let Some(ttft) = self.slo_ttft_ns {
                if exceeds(met * pf.prefill_unit_ns, r_pf, ttft) {
                    return true;
                }
            }
            if let Some(e2e) = self.slo_e2e_ns {
                if exceeds(met * pf.prefill_unit_ns, r_pf, e2e) {
                    return true;
                }
                if self.steps > 0 {
                    if exceeds(met * steps * dec.decode_unit_ns, r_dec, e2e) {
                        return true;
                    }
                    // Each handoff serializes on its destination link;
                    // the decode pool owns `r_dec` links.
                    if let Some(transfer) = self.min_transfer_ns(cand) {
                        if exceeds(met * transfer, r_dec, e2e) {
                            return true;
                        }
                    }
                }
            }
        } else {
            let Some((r, p)) = self.pool_prices(cand, PoolRole::Unified) else {
                return false;
            };
            if let Some(ttft) = self.slo_ttft_ns {
                if exceeds(met * p.prefill_unit_ns, r, ttft) {
                    return true;
                }
            }
            if let Some(e2e) = self.slo_e2e_ns {
                if exceeds(met * (p.prefill_unit_ns + steps * p.decode_unit_ns), r, e2e) {
                    return true;
                }
            }
        }
        false
    }

    /// Cheapest handoff transfer across the candidate's prefill×decode
    /// platform pairings, `None` for unified fleets.
    fn min_transfer_ns(&self, cand: &PlanCandidate) -> Option<f64> {
        let mut best: Option<f64> = None;
        for pf in cand
            .spec
            .groups
            .iter()
            .filter(|g| g.role == PoolRole::Prefill)
        {
            for dec in cand
                .spec
                .groups
                .iter()
                .filter(|g| g.role == PoolRole::Decode)
            {
                let t = pf
                    .platform
                    .kv_handoff_time(&dec.platform, self.handoff_bytes)
                    .as_nanos_f64();
                best = Some(best.map_or(t, |b: f64| b.min(t)));
            }
        }
        best
    }

    /// Replica-seconds any feasible run of the candidate must bill:
    /// billing runs from time zero through at least the last arrival, and
    /// each pool keeps at least its drain floor live the whole way.
    fn cost_floor_s(&self, cand: &PlanCandidate) -> f64 {
        let mut floor_replicas = 0u32;
        for g in &cand.spec.groups {
            floor_replicas += if cand.autoscaled {
                g.count.min(self.min_per_pool)
            } else {
                g.count
            };
        }
        f64::from(floor_replicas) * self.t_last_s * (1.0 - BOUND_SLACK)
    }

    /// The fastest any request can traverse the candidate — whole
    /// cheapest iterations, ignoring every queue — which lower-bounds
    /// every e2e sample and hence the report's p95. `None` when the bound
    /// does not apply (chunked policy, or off-menu platforms).
    fn e2e_floor_ns(&self, cand: &PlanCandidate) -> Option<f64> {
        if !self.analytic {
            return None;
        }
        let steps = f64::from(self.steps);
        let lb = if cand.spec.is_disaggregated() {
            let pf = self.cheapest_iter(cand, PoolRole::Prefill, |p| p.prefill_iter_min_ns)?;
            let mut lb = pf;
            if self.steps > 0 {
                let dec = self.cheapest_iter(cand, PoolRole::Decode, |p| p.decode_iter_min_ns)?;
                lb += steps * dec + self.min_transfer_ns(cand).unwrap_or(0.0);
            }
            lb
        } else {
            let pf = self.cheapest_iter(cand, PoolRole::Unified, |p| p.prefill_iter_min_ns)?;
            let dec = self.cheapest_iter(cand, PoolRole::Unified, |p| p.decode_iter_min_ns)?;
            pf + steps * dec
        };
        Some(lb * (1.0 - BOUND_SLACK))
    }

    /// Minimum of `pick` over the priced platforms serving `role`;
    /// `None` when the pool is empty or holds an off-menu platform.
    fn cheapest_iter(
        &self,
        cand: &PlanCandidate,
        role: PoolRole,
        pick: impl Fn(&PlatformPrice) -> f64,
    ) -> Option<f64> {
        let mut best: Option<f64> = None;
        let mut saw = false;
        for g in cand.spec.groups.iter().filter(|g| g.role == role) {
            saw = true;
            let p = self.prices.iter().find(|p| p.name == g.platform.name)?;
            let v = pick(p);
            best = Some(best.map_or(v, |b: f64| b.min(v)));
        }
        if saw {
            best
        } else {
            None
        }
    }
}

/// Prices one platform for the analytic bounds: minimum whole-iteration
/// and per-request-share costs over every batch size up to the planner's
/// cap and every decode context the envelope can produce. Minima (not
/// point samples) because the interpolated pattern table is not assumed
/// monotone in batch or context — the bound must under-estimate every
/// iteration the simulator could price.
fn price_platform(platform: &Platform, cfg: &PlannerConfig) -> PlatformPrice {
    let env = &cfg.envelope;
    let lat = LatencyModel::new(platform.clone(), env.model.clone());
    let prompt = env.prompt_len;
    let max_batch = cfg.max_batch.max(1);
    let mut prefill_unit = f64::INFINITY;
    let mut prefill_iter = f64::INFINITY;
    for b in 1..=max_batch {
        let d = lat.prefill(b, prompt).as_nanos_f64();
        prefill_iter = prefill_iter.min(d);
        prefill_unit = prefill_unit.min(d / f64::from(b));
    }
    let mut decode_unit = f64::INFINITY;
    let mut decode_iter = f64::INFINITY;
    let ctx_lo = prompt.saturating_add(1);
    let ctx_hi = prompt.saturating_add(env.new_tokens.max(1));
    for b in 1..=max_batch {
        for ctx in ctx_lo..=ctx_hi {
            let d = lat.decode_step(b, ctx).as_nanos_f64();
            decode_iter = decode_iter.min(d);
            decode_unit = decode_unit.min(d / f64::from(b));
        }
    }
    PlatformPrice {
        name: platform.name.clone(),
        prefill_unit_ns: prefill_unit,
        decode_unit_ns: decode_unit,
        prefill_iter_min_ns: prefill_iter,
        decode_iter_min_ns: decode_iter,
    }
}

/// Runs the whole plan serially and exhaustively: [`enumerate`], then
/// [`evaluate`] each candidate in order — the reference the pruned sweep
/// is differentially tested against. Production front ends use
/// [`plan_pruned`] (serial) or [`sweep_with`] (fanned out); both produce
/// the same [`frontier`]/[`cheapest`] as this function.
#[must_use]
pub fn plan(cfg: &PlannerConfig) -> Vec<PlanOutcome> {
    enumerate(cfg).iter().map(|c| evaluate(cfg, c)).collect()
}

/// The pruned generational sweep, serial form: waves of ascending replica
/// count, each wave's candidates scored by [`evaluate_bounded`] under the
/// bounds absorbed from completed waves.
#[must_use]
pub fn plan_pruned(cfg: &PlannerConfig) -> PlanSweep {
    sweep_with(cfg, |wave, bounds| {
        wave.iter()
            .map(|c| evaluate_bounded(cfg, c, bounds))
            .collect()
    })
}

/// The pruned generational sweep with a pluggable wave executor: the
/// planner owns wave order and bound accumulation, `run_wave` owns the
/// fan-out (serial map, `skip-bench` harness, anything that maps
/// [`evaluate_bounded`] over the wave *in order*). Outcomes are returned
/// in [`enumerate`] order regardless of wave grouping, so the sweep is
/// byte-identical to [`plan_pruned`] at any worker count.
///
/// # Panics
///
/// Panics if `run_wave` returns a different number of outcomes than the
/// wave it was given.
#[must_use]
pub fn sweep_with<F>(cfg: &PlannerConfig, mut run_wave: F) -> PlanSweep
where
    F: FnMut(Vec<PlanCandidate>, &SweepBounds) -> Vec<PlanOutcome>,
{
    let cands = enumerate(cfg);
    let total = cands.len();
    let buckets = cfg.max_replicas.max(1) as usize;
    let mut index_waves: Vec<Vec<usize>> = (0..buckets).map(|_| Vec::new()).collect();
    for (i, c) in cands.iter().enumerate() {
        let n = (c.spec.total_replicas().max(1) as usize).min(buckets);
        index_waves[n - 1].push(i);
    }
    let mut bounds = SweepBounds::new(cfg);
    let mut outcomes: Vec<Option<PlanOutcome>> = (0..total).map(|_| None).collect();
    let mut stats = SweepStats {
        candidates: total as u32,
        ..SweepStats::default()
    };
    for wave in &index_waves {
        if wave.is_empty() {
            continue;
        }
        let batch: Vec<PlanCandidate> = wave.iter().map(|&i| cands[i].clone()).collect();
        let outs = run_wave(batch, &bounds);
        assert_eq!(outs.len(), wave.len(), "wave executor must map 1:1");
        bounds.absorb(&outs);
        for (&i, o) in wave.iter().zip(outs) {
            stats.count(o.resolution);
            outcomes[i] = Some(o);
        }
    }
    PlanSweep {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every candidate resolved"))
            .collect(),
        stats,
    }
}

/// The cost-optimal frontier: feasible outcomes not dominated on the
/// (replica-seconds, p95 e2e) plane — an outcome is dropped only when
/// another feasible outcome is at least as cheap *and* at least as fast,
/// and strictly better on one axis. Returned sorted by ascending cost
/// (ties by ascending p95, then enumeration order), so the first entry is
/// [`cheapest`] and the last is the latency-optimal end.
///
/// Sort-then-scan, `O(n log n)`: after sorting by (cost, p95), an outcome
/// survives iff it has its equal-cost group's minimum p95 *and* that p95
/// strictly undercuts everything strictly cheaper.
#[must_use]
pub fn frontier(outcomes: &[PlanOutcome]) -> Vec<&PlanOutcome> {
    let mut front: Vec<&PlanOutcome> = outcomes.iter().filter(|o| o.feasible).collect();
    // Stable sort: equal (cost, p95) outcomes keep enumeration order.
    front.sort_by(|a, b| {
        a.cost()
            .total_cmp(&b.cost())
            .then(a.report.e2e_p95.cmp(&b.report.e2e_p95))
    });
    let mut kept: Vec<&PlanOutcome> = Vec::with_capacity(front.len());
    let mut best_cheaper = SimDuration::MAX;
    let mut i = 0;
    while i < front.len() {
        let mut j = i + 1;
        while j < front.len() && front[j].cost() == front[i].cost() {
            j += 1;
        }
        // Sorted within the group, so the first member holds its min p95;
        // equal-point duplicates are mutually non-dominating and all kept.
        let group_min = front[i].report.e2e_p95;
        if group_min < best_cheaper {
            kept.extend(
                front[i..j]
                    .iter()
                    .filter(|o| o.report.e2e_p95 == group_min)
                    .copied(),
            );
            best_cheaper = group_min;
        }
        i = j;
    }
    kept
}

/// The cheapest feasible outcome — minimum replica-seconds, ties broken
/// by p95 e2e and then by enumeration order. `None` when no candidate
/// clears the floor (the envelope needs a bigger `max_replicas`).
#[must_use]
pub fn cheapest(outcomes: &[PlanOutcome]) -> Option<&PlanOutcome> {
    outcomes
        .iter()
        .filter(|o| o.feasible)
        .fold(None, |best, o| match best {
            Some(b) if (b.cost(), b.report.e2e_p95) <= (o.cost(), o.report.e2e_p95) => Some(b),
            _ => Some(o),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    fn small_planner() -> PlannerConfig {
        let mut cfg = PlannerConfig::new(TrafficEnvelope {
            model: zoo::gpt2(),
            qps: 60.0,
            peak_qps: None,
            requests: 24,
            prompt_len: 128,
            new_tokens: 4,
            seed: 7,
            slo: SloTargets {
                ttft: Some(SimDuration::from_millis(400)),
                e2e: Some(SimDuration::from_millis(2000)),
            },
        });
        cfg.max_replicas = 3;
        cfg
    }

    #[test]
    fn enumeration_is_deterministic_ordered_and_valid() {
        let cfg = small_planner();
        let cands = enumerate(&cfg);
        assert_eq!(cands, enumerate(&cfg), "same config, same candidate list");
        // 3 platforms × 3 counts × 2 variants homogeneous, plus
        // 9 pairings × 3 splits (1+1, 1+2, 2+1) × 2 variants disaggregated.
        assert_eq!(cands.len(), 3 * 3 * 2 + 9 * 3 * 2);
        for c in &cands {
            assert!(c.spec.total_replicas() <= cfg.max_replicas, "{}", c.label());
            assert_eq!(fleet_config(&cfg, c).validate(), Ok(()), "{}", c.label());
        }
        // Labels are unique — every candidate is a distinct fleet.
        let mut labels: Vec<String> = cands.iter().map(PlanCandidate::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cands.len());
    }

    #[test]
    fn waves_partition_the_enumeration_by_ascending_size() {
        let cfg = small_planner();
        let waves = waves(&cfg);
        assert_eq!(waves.len(), cfg.max_replicas as usize);
        let total: usize = waves.iter().map(Vec::len).sum();
        assert_eq!(total, enumerate(&cfg).len());
        for (i, wave) in waves.iter().enumerate() {
            for c in wave {
                assert_eq!(
                    c.spec.total_replicas() as usize,
                    i + 1,
                    "{} in wave {}",
                    c.label(),
                    i
                );
            }
        }
        // Within a wave, candidates keep enumeration order.
        let order: Vec<String> = enumerate(&cfg).iter().map(PlanCandidate::label).collect();
        for wave in &waves {
            let mut last = 0;
            for c in wave {
                let pos = order.iter().position(|l| *l == c.label()).unwrap();
                assert!(pos >= last, "wave preserves enumeration order");
                last = pos;
            }
        }
    }

    #[test]
    fn validate_rejects_degenerate_planners() {
        let ok = small_planner();
        assert_eq!(ok.validate(), Ok(()));
        let mut bad = ok.clone();
        bad.max_replicas = 0;
        assert_eq!(bad.validate(), Err(PlanError::ZeroMaxReplicas));
        let mut bad = ok.clone();
        bad.attainment_floor = 0.0;
        assert_eq!(bad.validate(), Err(PlanError::BadAttainmentFloor(0.0)));
        let mut bad = ok.clone();
        bad.attainment_floor = 1.5;
        assert_eq!(bad.validate(), Err(PlanError::BadAttainmentFloor(1.5)));
        let mut bad = ok.clone();
        bad.envelope.requests = 0;
        assert_eq!(bad.validate(), Err(PlanError::EmptyEnvelope));
        let mut bad = ok.clone();
        bad.envelope.qps = 0.0;
        assert_eq!(bad.validate(), Err(PlanError::BadLoad(0.0)));
        let mut bad = ok;
        bad.platforms.clear();
        assert_eq!(bad.validate(), Err(PlanError::NoPlatforms));
        // Errors render actionable messages.
        assert!(PlanError::ZeroMaxReplicas
            .to_string()
            .contains("at least 1"));
    }

    #[test]
    fn peaked_envelopes_turn_diurnal() {
        let mut cfg = small_planner();
        assert!(matches!(
            cfg.envelope.arrivals(),
            ArrivalProcess::Poisson { .. }
        ));
        cfg.envelope.peak_qps = Some(cfg.envelope.qps * 4.0);
        assert!(matches!(
            cfg.envelope.arrivals(),
            ArrivalProcess::Diurnal { .. }
        ));
        // A "peak" at or below the mean degenerates back to Poisson.
        cfg.envelope.peak_qps = Some(cfg.envelope.qps);
        assert!(matches!(
            cfg.envelope.arrivals(),
            ArrivalProcess::Poisson { .. }
        ));
    }

    #[test]
    fn attainment_floor_separates_feasible_from_infeasible() {
        let cfg = small_planner();
        let starved = PlanCandidate {
            spec: FleetSpec::homogeneous(Platform::amd_a100(), 1),
            autoscaled: false,
        };
        let mut strict = cfg.clone();
        strict.envelope.slo = SloTargets {
            ttft: Some(SimDuration::from_nanos(1)),
            e2e: None,
        };
        assert!(
            !evaluate(&strict, &starved).feasible,
            "a 1ns TTFT target is unattainable"
        );
        let mut generous = cfg;
        generous.envelope.slo = SloTargets {
            ttft: Some(SimDuration::from_secs(3600)),
            e2e: Some(SimDuration::from_secs(3600)),
        };
        let o = evaluate(&generous, &starved);
        assert!(o.feasible, "an hour-long target is trivially met");
        assert!(o.cost() > 0.0, "completed runs bill replica-seconds");
    }

    #[test]
    fn plan_finds_a_feasible_fleet_and_prices_it() {
        let cfg = small_planner();
        let outcomes = plan(&cfg);
        assert_eq!(outcomes.len(), enumerate(&cfg).len());
        let best = cheapest(&outcomes).expect("some fleet serves this envelope");
        assert!(best.feasible);
        // Minimality: nothing feasible is strictly cheaper.
        for o in outcomes.iter().filter(|o| o.feasible) {
            assert!(
                best.cost() <= o.cost(),
                "{} undercut {}",
                o.label,
                best.label
            );
        }
    }

    #[test]
    fn pruned_sweep_matches_the_exhaustive_frontier() {
        let cfg = small_planner();
        let exhaustive = plan(&cfg);
        let pruned = plan_pruned(&cfg);
        assert_eq!(pruned.outcomes.len(), exhaustive.len());
        assert_eq!(
            pruned.stats.candidates as usize,
            exhaustive.len(),
            "stats cover the whole space"
        );
        assert_eq!(
            pruned.stats.simulated
                + pruned.stats.aborted
                + pruned.stats.pruned_infeasible
                + pruned.stats.pruned_dominated,
            pruned.stats.candidates,
            "every candidate resolved exactly once"
        );
        assert_eq!(frontier(&pruned.outcomes), frontier(&exhaustive));
        assert_eq!(
            cheapest(&pruned.outcomes).map(|o| &o.label),
            cheapest(&exhaustive).map(|o| &o.label)
        );
        // Feasible outcomes are always full simulations and identical to
        // the exhaustive sweep's.
        for (p, e) in pruned.outcomes.iter().zip(&exhaustive) {
            if p.feasible {
                assert_eq!(p.resolution, Resolution::Simulated);
                assert_eq!(p, e, "{}", p.label);
            }
            if p.resolution != Resolution::Simulated {
                assert!(
                    p.report.aborted,
                    "{}: non-simulated must be aborted",
                    p.label
                );
                assert!(!p.feasible, "{}: non-simulated is never feasible", p.label);
            }
        }
    }

    #[test]
    fn frontier_is_sorted_feasible_and_mutually_nondominated() {
        let cfg = small_planner();
        let outcomes = plan(&cfg);
        let front = frontier(&outcomes);
        assert!(!front.is_empty(), "a feasible plan implies a frontier");
        assert_eq!(
            front[0].label,
            cheapest(&outcomes).expect("feasible").label,
            "the frontier starts at the cheapest feasible fleet"
        );
        for w in front.windows(2) {
            assert!(w[0].cost() <= w[1].cost(), "frontier sorted by cost");
            assert!(
                w[1].report.e2e_p95 <= w[0].report.e2e_p95,
                "paying more must buy latency on the frontier: {} vs {}",
                w[0].label,
                w[1].label
            );
        }
        for a in &front {
            assert!(a.feasible);
            for b in &front {
                let strictly_better = b.cost() < a.cost() && b.report.e2e_p95 < a.report.e2e_p95;
                assert!(
                    !strictly_better,
                    "{} strictly dominates {} on the frontier",
                    b.label, a.label
                );
            }
        }
    }

    #[test]
    fn infeasible_sets_have_no_frontier() {
        let mut cfg = small_planner();
        cfg.envelope.slo = SloTargets {
            ttft: Some(SimDuration::from_nanos(1)),
            e2e: None,
        };
        cfg.platforms.truncate(1);
        cfg.max_replicas = 1;
        let outcomes = plan(&cfg);
        assert!(cheapest(&outcomes).is_none());
        assert!(frontier(&outcomes).is_empty());
        // The pruned sweep agrees, and its analytic bound fires: a 1ns
        // TTFT window cannot absorb any prefill work.
        let pruned = plan_pruned(&cfg);
        assert!(cheapest(&pruned.outcomes).is_none());
        assert!(
            pruned.stats.pruned_infeasible > 0,
            "the service-demand bound rejects candidates without simulating: {:?}",
            pruned.stats
        );
    }

    #[test]
    fn cost_ceiling_aborts_cap_a_provably_worse_run() {
        // Force a tiny ceiling through a hand-built bounds object by
        // planting an absurdly good incumbent, then check the bounded
        // evaluation aborts instead of finishing.
        let cfg = small_planner();
        let mut bounds = SweepBounds::new(&cfg);
        let good = Incumbent {
            cost_s: 1e-6,
            e2e_ns: 0.0,
        };
        bounds.incumbents.push(good);
        let cand = PlanCandidate {
            spec: FleetSpec::homogeneous(Platform::intel_h100(), 2),
            autoscaled: false,
        };
        let o = evaluate_bounded(&cfg, &cand, &bounds);
        assert!(!o.feasible);
        assert!(
            matches!(
                o.resolution,
                Resolution::Aborted | Resolution::PrunedDominated
            ),
            "{:?}",
            o.resolution
        );
        assert!(o.report.aborted);
    }
}
