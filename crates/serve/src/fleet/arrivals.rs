//! Non-stationary arrival processes for fleet simulations.
//!
//! The homogeneous floor only knows stationary Poisson arrivals; an
//! autoscaler is pointless against those. This module adds the two load
//! shapes capacity planning actually faces — a diurnal swell and an
//! on/off bursty trace — implemented by *thinning*: candidate arrivals
//! are drawn from a homogeneous Poisson process at the peak rate and
//! accepted with probability `rate(t) / peak`, which realizes any
//! bounded time-varying rate exactly and keeps the stream seeded and
//! reproducible.

use std::f64::consts::TAU;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};

use crate::request::Request;

/// A seeded request arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Stationary Poisson arrivals (the PR 5 floor's process).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_s: f64,
    },
    /// A sinusoidal day/night swell: the rate oscillates between
    /// `base_rate_per_s` (trough) and `peak_rate_per_s` (crest) with the
    /// given period, starting at the trough.
    Diurnal {
        /// Trough rate, requests per second.
        base_rate_per_s: f64,
        /// Crest rate, requests per second.
        peak_rate_per_s: f64,
        /// One full day/night cycle.
        period: SimDuration,
    },
    /// An on/off trace: `burst_len` at `burst_rate_per_s`, then
    /// `lull_len` at `base_rate_per_s`, repeating. The square wave is the
    /// adversarial input for reactive autoscaling — the load doubles
    /// faster than any provisioning delay.
    Bursty {
        /// Rate during lulls, requests per second.
        base_rate_per_s: f64,
        /// Rate during bursts, requests per second.
        burst_rate_per_s: f64,
        /// Burst duration.
        burst_len: SimDuration,
        /// Lull duration.
        lull_len: SimDuration,
    },
}

impl ArrivalProcess {
    /// The highest instantaneous rate the process reaches (the thinning
    /// envelope).
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                ..
            } => base_rate_per_s.max(peak_rate_per_s),
            ArrivalProcess::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                ..
            } => base_rate_per_s.max(burst_rate_per_s),
        }
    }

    /// The instantaneous rate at `t` seconds.
    #[must_use]
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                period,
            } => {
                let phase = TAU * (t_s / period.as_secs_f64());
                // Starts at the trough, crests half a period in.
                base_rate_per_s + (peak_rate_per_s - base_rate_per_s) * 0.5 * (1.0 - phase.cos())
            }
            ArrivalProcess::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                burst_len,
                lull_len,
            } => {
                let cycle = burst_len.as_secs_f64() + lull_len.as_secs_f64();
                let into = t_s % cycle;
                if into < burst_len.as_secs_f64() {
                    burst_rate_per_s
                } else {
                    base_rate_per_s
                }
            }
        }
    }

    /// Checks rates and durations.
    ///
    /// The *trough* rates (diurnal base, bursty lull) may be exactly zero —
    /// a dead lull is a legitimate load shape and the thinning sampler
    /// handles it — but the envelope rates must be positive or the
    /// candidate process would never advance.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |label: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(crate::config::check::positive_rate(label, v))
            }
        };
        let non_neg = |label: &str, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(format!("{label} must be non-negative and finite, got {v}"))
            }
        };
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => pos("rate", rate_per_s),
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                period,
            } => {
                non_neg("base rate", base_rate_per_s)?;
                pos("peak rate", peak_rate_per_s)?;
                if peak_rate_per_s < base_rate_per_s {
                    return Err("peak rate must be at least the base rate".into());
                }
                if period.is_zero() {
                    return Err("diurnal period must be positive".into());
                }
                Ok(())
            }
            ArrivalProcess::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                burst_len,
                lull_len,
            } => {
                non_neg("base rate", base_rate_per_s)?;
                pos("burst rate", burst_rate_per_s)?;
                if burst_len.is_zero() || lull_len.is_zero() {
                    return Err("burst and lull durations must be positive".into());
                }
                Ok(())
            }
        }
    }

    /// Generates the first `n` arrivals, each with the given request
    /// shape. Deterministic for a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics if the process fails [`validate`](Self::validate).
    #[must_use]
    pub fn generate(&self, n: usize, prompt_len: u32, new_tokens: u32, seed: u64) -> Vec<Request> {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let peak = self.peak_rate();
        let mut clock = SimTime::ZERO;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            // Candidate gap from the peak-rate envelope process…
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap_s = -u.ln() / peak;
            clock += SimDuration::from_nanos_f64(gap_s * 1e9);
            // …thinned down to the instantaneous rate. The acceptance
            // draw happens for stationary Poisson too (it always
            // accepts), so all three processes share one stream shape.
            let accept: f64 = rng.gen_range(0.0..1.0);
            if thin_accepts(accept, peak, self.rate_at(clock.as_millis_f64() / 1e3)) {
                out.push(Request {
                    id: out.len() as u64,
                    arrival: clock,
                    prompt_len,
                    new_tokens,
                });
            }
        }
        out
    }
}

/// The thinning acceptance predicate: keep the candidate iff
/// `accept * peak < rate`, where `accept` is drawn uniformly from
/// `[0, 1)`.
///
/// The comparison is *strict*: the draw's range includes 0.0, so the
/// pre-fix `<=` accepted a candidate at `accept == 0.0` even when the
/// instantaneous rate was exactly zero — a Bursty lull with
/// `base_rate_per_s = 0` could still emit arrivals. With `<`, a zero rate
/// never accepts, while a full-rate instant (`rate == peak`) still accepts
/// every draw because `accept < 1.0` by construction — stationary Poisson
/// streams are unchanged.
///
/// The fix can only flip a decision where `accept * peak == rate` exactly;
/// no committed fixture or experiment configuration has a seeded draw
/// landing on that boundary, so the golden fleet fixtures did *not* shift
/// (the byte-identity suite pins this). Had a stream shifted, the affected
/// fixtures would have been re-pinned under this documented fix.
fn thin_accepts(accept: f64, peak: f64, rate: f64) -> bool {
    accept * peak < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_monotone() {
        let p = ArrivalProcess::Diurnal {
            base_rate_per_s: 10.0,
            peak_rate_per_s: 100.0,
            period: SimDuration::from_secs(10),
        };
        let a = p.generate(200, 128, 8, 42);
        let b = p.generate(200, 128, 8, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[1].arrival >= w[0].arrival));
        assert_eq!(a.last().unwrap().id, 199);
    }

    #[test]
    fn poisson_generation_approximates_rate() {
        let p = ArrivalProcess::Poisson { rate_per_s: 100.0 };
        let reqs = p.generate(20_000, 64, 4, 9);
        let span_s = reqs.last().unwrap().arrival.as_millis_f64() / 1e3;
        let rate = reqs.len() as f64 / span_s;
        assert!((rate - 100.0).abs() / 100.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn diurnal_rate_oscillates_between_base_and_peak() {
        let p = ArrivalProcess::Diurnal {
            base_rate_per_s: 10.0,
            peak_rate_per_s: 90.0,
            period: SimDuration::from_secs(20),
        };
        assert!((p.rate_at(0.0) - 10.0).abs() < 1e-9, "starts at trough");
        assert!((p.rate_at(10.0) - 90.0).abs() < 1e-9, "crests mid-period");
        assert!((p.rate_at(20.0) - 10.0).abs() < 1e-9, "periodic");
        // The crest half of the cycle actually arrives denser than the
        // trough half.
        let reqs = p.generate(4_000, 64, 4, 3);
        let (mut crest, mut trough) = (0u32, 0u32);
        for r in &reqs {
            let into = (r.arrival.as_millis_f64() / 1e3) % 20.0;
            if (5.0..15.0).contains(&into) {
                crest += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            crest > 3 * trough,
            "crest half must dominate: {crest} vs {trough}"
        );
    }

    #[test]
    fn bursty_rate_is_a_square_wave() {
        let p = ArrivalProcess::Bursty {
            base_rate_per_s: 5.0,
            burst_rate_per_s: 200.0,
            burst_len: SimDuration::from_secs(2),
            lull_len: SimDuration::from_secs(8),
        };
        assert!((p.rate_at(1.0) - 200.0).abs() < 1e-9);
        assert!((p.rate_at(3.0) - 5.0).abs() < 1e-9);
        assert!((p.rate_at(11.0) - 200.0).abs() < 1e-9, "cycle repeats");
        assert_eq!(p.peak_rate(), 200.0);
    }

    /// Regression for the thinning boundary bug: with the inclusive
    /// `accept * peak <= rate` comparison, a draw of exactly 0.0 accepted a
    /// candidate even at rate 0. The predicate must reject at zero rate
    /// for *any* draw, and still accept every draw at full rate.
    #[test]
    fn thinning_predicate_rejects_zero_rate_at_boundary_draw() {
        assert!(
            !thin_accepts(0.0, 200.0, 0.0),
            "the pre-fix bug: 0.0 draw accepted at rate 0"
        );
        assert!(!thin_accepts(0.5, 200.0, 0.0));
        // Full-rate instants accept every draw in [0, 1).
        assert!(thin_accepts(0.0, 200.0, 200.0));
        assert!(thin_accepts(0.999_999, 200.0, 200.0));
        // Half rate: accepts exactly the draws below 1/2.
        assert!(thin_accepts(0.499, 200.0, 100.0));
        assert!(!thin_accepts(0.5, 200.0, 100.0));
    }

    /// A bursty process with a *zero-rate* lull must emit every arrival
    /// inside a burst window — the lull is dead time by construction.
    #[test]
    fn zero_rate_lull_emits_no_arrivals() {
        let burst_s = 2.0;
        let lull_s = 8.0;
        let p = ArrivalProcess::Bursty {
            base_rate_per_s: 0.0,
            burst_rate_per_s: 200.0,
            burst_len: SimDuration::from_secs(2),
            lull_len: SimDuration::from_secs(8),
        };
        for seed in [1u64, 42, 2026] {
            let reqs = p.generate(500, 64, 4, seed);
            assert_eq!(reqs.len(), 500);
            for r in &reqs {
                let into = (r.arrival.as_millis_f64() / 1e3) % (burst_s + lull_s);
                assert!(
                    into < burst_s,
                    "seed {seed}: arrival {} fell {into:.3}s into the cycle — inside the dead lull",
                    r.id
                );
            }
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(ArrivalProcess::Poisson { rate_per_s: 0.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Diurnal {
            base_rate_per_s: 50.0,
            peak_rate_per_s: 10.0,
            period: SimDuration::from_secs(1),
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Bursty {
            base_rate_per_s: 5.0,
            burst_rate_per_s: 50.0,
            burst_len: SimDuration::ZERO,
            lull_len: SimDuration::from_secs(1),
        }
        .validate()
        .is_err());
    }
}
