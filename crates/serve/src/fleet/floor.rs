//! The fleet floor: a DES over heterogeneous, optionally disaggregated,
//! optionally autoscaled replica pools.
//!
//! Structure mirrors the single-platform floor (`crate::floor`): events
//! move requests between explicitly-tracked buckets (per-replica queues,
//! running batches, handoff links) and every event boundary takes one
//! conservation-checked counter sample. What is new here:
//!
//! * each replica prices iterations through its **own platform's**
//!   [`LatencyModel`], so a gh200 and an amd_a100 replica in one fleet
//!   charge different prefill/decode costs;
//! * a disaggregated fleet splits replicas into a prefill pool and a
//!   decode pool, connected by per-destination **handoff links**: a
//!   finished prefill's KV blocks queue on the destination's link and
//!   occupy it for `src.kv_handoff_time(dst, bytes)` — one transfer at a
//!   time per destination, so the interconnect itself can back up;
//! * an optional **autoscaler** ticks on a fixed interval and
//!   launches/drains replicas against load watermarks, with launch cost
//!   priced as provisioning delay plus the coupling-derived weight load.

use std::collections::VecDeque;

use skip_des::{percentile, SimContext, SimDuration, SimTime, Simulator};
use skip_hw::Platform;
use skip_mem::KvSpec;

use crate::fleet::autoscale::{ScaleAction, ScalingEvent};
use crate::fleet::observe::{FleetReport, FleetSample, FleetTrace};
use crate::fleet::spec::{FleetBatchPolicy, FleetConfig, FleetRouterPolicy, PoolRole};
use crate::latency::LatencyModel;
use crate::observe::{LifecycleKind, SloReport};
use crate::request::Request;
use crate::stop::{StopCondition, StopGuard};

#[derive(Debug, Clone, Copy)]
enum FEvent {
    Arrival(Request),
    /// A replica finished its running iteration.
    IterationDone(usize),
    /// The in-flight transfer on `dst`'s handoff link landed.
    HandoffDone(usize),
    /// Autoscaler decision point.
    ScaleTick,
    /// A launching replica finished provisioning + weight load.
    ReplicaUp(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RState {
    Launching,
    Up,
    Draining,
    Down,
}

/// One running request on a replica.
#[derive(Debug, Clone, Copy)]
struct FActive {
    req: Request,
    /// Output tokens produced so far (0 until prefill completes).
    generated: u32,
    /// Prompt tokens prefilled so far. Advances chunk-by-chunk under
    /// [`FleetBatchPolicy::ChunkedPrefill`]; continuous batching jumps it
    /// to `prompt_len` when the prefill iteration retires.
    prefilled: u32,
}

/// One replica's runtime state.
#[derive(Debug)]
struct ReplicaRt {
    platform_idx: usize,
    pool: PoolRole,
    state: RState,
    queue: VecDeque<Request>,
    actives: Vec<FActive>,
    busy: bool,
    /// Chunked-prefill plan for the running iteration: `plan[i]` is the
    /// prompt-token budget granted to `actives[i]` (0 = no chunk).
    /// Reused across iterations; empty under continuous batching.
    plan: Vec<u32>,
}

impl ReplicaRt {
    fn outstanding(&self) -> u32 {
        (self.queue.len() + self.actives.len()) as u32
    }

    fn takes_arrivals(&self) -> bool {
        matches!(self.pool, PoolRole::Unified | PoolRole::Prefill)
    }
}

/// A KV handoff parked on (or moving over) a destination link.
#[derive(Debug, Clone, Copy)]
struct Handoff {
    req: Request,
    queued_at: SimTime,
    bytes: u64,
    transfer: SimDuration,
}

/// Per-decode-replica ingress link: FIFO queue plus at most one
/// in-flight transfer, so concurrent handoffs to the same destination
/// serialize and the interconnect shows up as occupancy.
#[derive(Debug, Default)]
struct LinkRt {
    queue: VecDeque<Handoff>,
    inflight: Option<(Handoff, SimTime)>,
}

impl LinkRt {
    fn depth(&self) -> u32 {
        (self.queue.len() + usize::from(self.inflight.is_some())) as u32
    }
}

struct FleetFloor<'a> {
    cfg: &'a FleetConfig,
    platforms: Vec<Platform>,
    lat: Vec<LatencyModel>,
    kv: KvSpec,
    replicas: Vec<ReplicaRt>,
    links: Vec<LinkRt>,
    disagg: bool,
    rr_arrival: usize,
    rr_handoff: usize,
    finished: Vec<(SimDuration, SimDuration)>,
    /// Reusable retire scratch: the drained running set ping-pongs
    /// between here and each replica's `actives`, so retires allocate
    /// nothing once the buffers have grown to batch size.
    scratch_actives: Vec<FActive>,
    /// Reusable buffer for handoffs discovered during a retire.
    scratch_handoffs: Vec<Request>,
    /// Reusable buffer of routable replica indices.
    eligible_buf: Vec<usize>,
    last_completion: SimTime,
    obs: FleetTrace,
    handoffs: u64,
    handoff_bytes: u64,
    handoff_waits: Vec<f64>,
    handoff_transfer_ns: f64,
    scale_ups: u32,
    scale_downs: u32,
    peak_live: u32,
    replica_ns: f64,
    last_bill: SimTime,
}

impl FleetFloor<'_> {
    fn handle(&mut self, ctx: &mut SimContext<'_, FEvent>, event: FEvent) {
        let now = ctx.now();
        match event {
            FEvent::Arrival(req) => {
                self.obs.record(req.id, now, LifecycleKind::Arrived);
                let r = self.route_arrival(&req);
                self.replicas[r].queue.push_back(req);
                self.kick(ctx, r);
            }
            FEvent::IterationDone(r) => {
                self.replicas[r].busy = false;
                self.retire(ctx, r, now);
                self.kick(ctx, r);
                self.settle_drains(now);
            }
            FEvent::HandoffDone(dst) => {
                let (h, started) = self.links[dst]
                    .inflight
                    .take()
                    .expect("HandoffDone without an in-flight transfer");
                self.obs.record(
                    h.req.id,
                    now,
                    LifecycleKind::HandoffDone {
                        to: dst as u32,
                        wait: started.saturating_duration_since(h.queued_at),
                        transfer: h.transfer,
                    },
                );
                self.handoffs += 1;
                self.handoff_bytes += h.bytes;
                self.handoff_waits.push(
                    started
                        .saturating_duration_since(h.queued_at)
                        .as_nanos_f64(),
                );
                self.handoff_transfer_ns += h.transfer.as_nanos_f64();
                self.replicas[dst].queue.push_back(h.req);
                self.pump_link(ctx, dst, now);
                self.kick(ctx, dst);
            }
            FEvent::ScaleTick => self.scale_tick(ctx, now),
            FEvent::ReplicaUp(r) => {
                self.bill(now);
                self.replicas[r].state = RState::Up;
                self.scale_ups += 1;
                self.obs.scaling.push(ScalingEvent {
                    at: now,
                    pool: self.replicas[r].pool,
                    replica: r as u32,
                    action: ScaleAction::Up,
                });
                self.kick(ctx, r);
            }
        }
        self.sample(now);
    }

    /// Starts the next iteration on replica `r` if it is idle and has
    /// work. Under continuous batching: a batched prefill when
    /// unprefilled admits exist, else one decode step for the running
    /// batch. Under chunked prefill: a token-budgeted chunk plan with
    /// co-scheduled decode steps.
    fn kick(&mut self, ctx: &mut SimContext<'_, FEvent>, r: usize) {
        let now = ctx.now();
        let rep = &mut self.replicas[r];
        if rep.busy || matches!(rep.state, RState::Launching | RState::Down) {
            return;
        }
        // Admit newcomers at the iteration boundary.
        let room = (self.cfg.max_batch as usize).saturating_sub(rep.actives.len());
        let decode_side = rep.pool == PoolRole::Decode;
        for _ in 0..room {
            let Some(req) = rep.queue.pop_front() else {
                break;
            };
            let kind = if decode_side {
                LifecycleKind::DecodeAdmitted { replica: r as u32 }
            } else {
                LifecycleKind::Admitted { replica: r as u32 }
            };
            self.obs.record(req.id, now, kind);
            rep.actives.push(FActive {
                // Handed-off requests arrive with their prompt prefilled
                // and their first token already produced by the prefill
                // pool.
                generated: u32::from(decode_side),
                prefilled: if decode_side { req.prompt_len } else { 0 },
                req,
            });
        }
        if rep.actives.is_empty() {
            return;
        }
        let dur = match self.cfg.policy {
            FleetBatchPolicy::Continuous => self.continuous_iteration(r),
            FleetBatchPolicy::ChunkedPrefill { chunk_tokens } => {
                self.chunked_iteration(r, chunk_tokens)
            }
        };
        if let Some(dur) = dur {
            self.replicas[r].busy = true;
            ctx.schedule(now + dur, FEvent::IterationDone(r));
        }
    }

    /// Prices one continuous-batching iteration for `r`'s running batch
    /// in a single counting pass (prefill-priority: when any admitted
    /// request still needs its prompt, the iteration prefills those whole
    /// while decoders idle).
    fn continuous_iteration(&self, r: usize) -> Option<SimDuration> {
        let rep = &self.replicas[r];
        let lat = &self.lat[rep.platform_idx];
        let mut fresh_rows = 0u32;
        let mut fresh_len = 0u32;
        let mut batch_ctx = 0u32;
        for a in &rep.actives {
            if a.generated == 0 {
                fresh_rows += 1;
                fresh_len = fresh_len.max(a.req.prompt_len);
            }
            batch_ctx = batch_ctx.max(a.req.prompt_len + a.generated);
        }
        Some(if fresh_rows == 0 {
            lat.decode_step(rep.actives.len() as u32, batch_ctx)
        } else {
            lat.prefill(fresh_rows, fresh_len)
        })
    }

    /// Plans one Sarathi-style chunked iteration for `r`, mirroring the
    /// single-platform floor's `ChunkedPrefillBatch`: spend at most
    /// `chunk_tokens` prompt tokens across unfinished prefills (oldest
    /// first) and co-schedule one decode step for every request already
    /// past its prompt. The plan lives in `ReplicaRt::plan` (reused
    /// across iterations) and is applied by [`Self::retire_chunked`].
    fn chunked_iteration(&mut self, r: usize, chunk_tokens: u32) -> Option<SimDuration> {
        let FleetFloor { replicas, lat, .. } = self;
        let rep = &mut replicas[r];
        let lat = &lat[rep.platform_idx];
        rep.plan.clear();
        rep.plan.resize(rep.actives.len(), 0);
        let mut budget = chunk_tokens;
        for (i, a) in rep.actives.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if a.prefilled >= a.req.prompt_len {
                continue;
            }
            let tokens = (a.req.prompt_len - a.prefilled).min(budget);
            rep.plan[i] = tokens;
            budget -= tokens;
        }
        // Price: one batched prefill over the chunk rows (sized by the
        // largest chunk) plus one decode step over the decode rows (sized
        // by the longest context).
        let mut chunk_rows = 0u32;
        let mut max_chunk = 0u32;
        let mut decode_rows = 0u32;
        let mut decode_ctx = 0u32;
        for (i, a) in rep.actives.iter().enumerate() {
            if rep.plan[i] > 0 {
                chunk_rows += 1;
                max_chunk = max_chunk.max(rep.plan[i]);
            } else if a.prefilled >= a.req.prompt_len {
                decode_rows += 1;
                decode_ctx = decode_ctx.max(a.prefilled + a.generated);
            }
        }
        let mut cost = SimDuration::ZERO;
        if chunk_rows > 0 {
            cost += lat.prefill(chunk_rows, max_chunk);
        }
        if decode_rows > 0 {
            cost += lat.decode_step(decode_rows, decode_ctx);
        }
        (chunk_rows + decode_rows > 0).then_some(cost)
    }

    /// Applies the finished iteration's effects: freshly-prefilled
    /// requests emit their first token (and complete, hand off, or stay
    /// for decode); decoding requests advance one token and complete at
    /// their budget.
    fn retire(&mut self, ctx: &mut SimContext<'_, FEvent>, r: usize, now: SimTime) {
        match self.cfg.policy {
            FleetBatchPolicy::Continuous => self.retire_continuous(ctx, r, now),
            FleetBatchPolicy::ChunkedPrefill { .. } => self.retire_chunked(ctx, r, now),
        }
    }

    fn retire_continuous(&mut self, ctx: &mut SimContext<'_, FEvent>, r: usize, now: SimTime) {
        let was_prefill = self.replicas[r].actives.iter().any(|a| a.generated == 0);
        let target = self.cfg.new_tokens.max(1);
        let pool = self.replicas[r].pool;
        // Drain through the reusable scratch buffer: swap the running set
        // out, push survivors straight back, and keep both capacities for
        // the next retire.
        let mut work = std::mem::replace(
            &mut self.replicas[r].actives,
            std::mem::take(&mut self.scratch_actives),
        );
        for mut a in work.drain(..) {
            if was_prefill {
                if a.generated == 0 {
                    a.generated = 1;
                    a.prefilled = a.req.prompt_len;
                    self.obs.record(a.req.id, now, LifecycleKind::FirstToken);
                } else {
                    // Decoding requests idled through the prefill
                    // iteration (prefill-priority continuous batching).
                    self.replicas[r].actives.push(a);
                    continue;
                }
            } else {
                a.generated += 1;
            }
            self.finish_or_keep(a, r, pool, target, now);
        }
        self.scratch_actives = work;
        self.flush_handoffs(ctx, r, now);
    }

    /// Applies the chunk plan recorded by [`Self::chunked_iteration`]:
    /// planned chunks advance `prefilled` (the final chunk emits the
    /// first token), decode-phase requests advance one token, and
    /// completion/handoff routing matches the continuous path.
    fn retire_chunked(&mut self, ctx: &mut SimContext<'_, FEvent>, r: usize, now: SimTime) {
        let target = self.cfg.new_tokens.max(1);
        let pool = self.replicas[r].pool;
        let plan = std::mem::take(&mut self.replicas[r].plan);
        let mut work = std::mem::replace(
            &mut self.replicas[r].actives,
            std::mem::take(&mut self.scratch_actives),
        );
        for (i, mut a) in work.drain(..).enumerate() {
            if a.prefilled >= a.req.prompt_len {
                // Spent the iteration in its decode phase.
                a.generated += 1;
            } else if plan[i] > 0 {
                a.prefilled += plan[i];
                if a.prefilled >= a.req.prompt_len {
                    // Final chunk: first token out with it.
                    a.generated = 1;
                    self.obs.record(a.req.id, now, LifecycleKind::FirstToken);
                } else {
                    self.replicas[r].actives.push(a);
                    continue;
                }
            } else {
                // Out of chunk budget this iteration; stays admitted.
                self.replicas[r].actives.push(a);
                continue;
            }
            self.finish_or_keep(a, r, pool, target, now);
        }
        self.scratch_actives = work;
        self.replicas[r].plan = plan;
        self.flush_handoffs(ctx, r, now);
    }

    /// Routes a request that just produced a token: complete at its
    /// budget, hand off from the prefill pool, else keep decoding.
    fn finish_or_keep(&mut self, a: FActive, r: usize, pool: PoolRole, target: u32, now: SimTime) {
        if a.generated >= target {
            self.complete(a.req, r, now);
        } else if pool == PoolRole::Prefill {
            self.scratch_handoffs.push(a.req);
        } else {
            self.replicas[r].actives.push(a);
        }
    }

    /// Starts every handoff parked in the scratch buffer (reused across
    /// retires).
    fn flush_handoffs(&mut self, ctx: &mut SimContext<'_, FEvent>, r: usize, now: SimTime) {
        let mut handoffs = std::mem::take(&mut self.scratch_handoffs);
        for req in handoffs.drain(..) {
            self.start_handoff(ctx, r, req, now);
        }
        self.scratch_handoffs = handoffs;
    }

    fn complete(&mut self, req: Request, r: usize, now: SimTime) {
        self.obs
            .record(req.id, now, LifecycleKind::Completed { replica: r as u32 });
        let lc = &self.obs.lifecycles[req.id as usize];
        let ttft = lc.ttft().unwrap_or(SimDuration::ZERO);
        let e2e = lc.e2e().unwrap_or(SimDuration::ZERO);
        self.finished.push((ttft, e2e));
        self.last_completion = self.last_completion.max(now);
    }

    /// Queues `req`'s KV on a decode replica's ingress link, starting the
    /// transfer immediately when the link is idle.
    fn start_handoff(
        &mut self,
        ctx: &mut SimContext<'_, FEvent>,
        from: usize,
        req: Request,
        now: SimTime,
    ) {
        let dst = self.route_handoff(&req);
        // Prompt plus the first token produced by prefill, in whole
        // blocks — what paged attention actually migrates.
        let bytes = self
            .kv
            .handoff_bytes(u64::from(req.prompt_len).saturating_add(1));
        let src_p = &self.platforms[self.replicas[from].platform_idx];
        let dst_p = &self.platforms[self.replicas[dst].platform_idx];
        let transfer = src_p.kv_handoff_time(dst_p, bytes);
        self.obs.record(
            req.id,
            now,
            LifecycleKind::HandoffQueued {
                from: from as u32,
                bytes,
            },
        );
        self.links[dst].queue.push_back(Handoff {
            req,
            queued_at: now,
            bytes,
            transfer,
        });
        self.pump_link(ctx, dst, now);
    }

    /// Starts the next queued transfer on `dst`'s link if it is idle.
    fn pump_link(&mut self, ctx: &mut SimContext<'_, FEvent>, dst: usize, now: SimTime) {
        if self.links[dst].inflight.is_some() {
            return;
        }
        if let Some(h) = self.links[dst].queue.pop_front() {
            let transfer = h.transfer;
            self.links[dst].inflight = Some((h, now));
            ctx.schedule(now + transfer, FEvent::HandoffDone(dst));
        }
    }

    /// Fills `eligible_buf` with the replica indices eligible for new
    /// work in the given direction (buffer reused across routing
    /// decisions, so steady-state routing allocates nothing).
    fn fill_eligible(&mut self, arrivals: bool) {
        let want = |rep: &ReplicaRt| {
            if arrivals {
                rep.takes_arrivals()
            } else {
                rep.pool == PoolRole::Decode
            }
        };
        self.eligible_buf.clear();
        for i in 0..self.replicas.len() {
            let rep = &self.replicas[i];
            if rep.state == RState::Up && want(rep) {
                self.eligible_buf.push(i);
            }
        }
        if !self.eligible_buf.is_empty() {
            return;
        }
        // Degenerate fallback (every candidate mid-drain): route to any
        // non-down replica of the right pool so no request is stranded.
        for i in 0..self.replicas.len() {
            let rep = &self.replicas[i];
            if rep.state != RState::Down && want(rep) {
                self.eligible_buf.push(i);
            }
        }
    }

    fn route_arrival(&mut self, req: &Request) -> usize {
        self.fill_eligible(true);
        let pick = self.pick(&self.eligible_buf, self.rr_arrival, req);
        if self.cfg.router == FleetRouterPolicy::RoundRobin {
            self.rr_arrival += 1;
        }
        pick
    }

    fn route_handoff(&mut self, req: &Request) -> usize {
        self.fill_eligible(false);
        let pick = self.pick(&self.eligible_buf, self.rr_handoff, req);
        if self.cfg.router == FleetRouterPolicy::RoundRobin {
            self.rr_handoff += 1;
        }
        pick
    }

    fn pick(&self, eligible: &[usize], rr_cursor: usize, _req: &Request) -> usize {
        assert!(!eligible.is_empty(), "fleet has no routable replica");
        match self.cfg.router {
            FleetRouterPolicy::RoundRobin => eligible[rr_cursor % eligible.len()],
            FleetRouterPolicy::JoinShortestQueue => *eligible
                .iter()
                .min_by_key(|&&i| (self.backlog(i), i))
                .expect("non-empty"),
            FleetRouterPolicy::CostModelJsq => {
                let mut best = eligible[0];
                let mut best_cost = f64::INFINITY;
                for &i in eligible {
                    let cost = f64::from(self.backlog(i) + 1) * self.unit_cost_ns(i);
                    if cost < best_cost {
                        best = i;
                        best_cost = cost;
                    }
                }
                best
            }
        }
    }

    /// Outstanding work at replica `i`: its queue, its running batch, and
    /// (for decode replicas) handoffs already committed to its link.
    fn backlog(&self, i: usize) -> u32 {
        self.replicas[i].outstanding() + self.links[i].depth()
    }

    /// Per-request service estimate on `i`'s platform, in nanoseconds —
    /// the cost-model JSQ's exchange rate between queue depths on
    /// different platforms. Memoized inside the [`LatencyModel`], so this
    /// is two map hits after the first call.
    fn unit_cost_ns(&self, i: usize) -> f64 {
        let rep = &self.replicas[i];
        let lat = &self.lat[rep.platform_idx];
        let b = self.cfg.max_batch.max(1);
        let prefill = lat.prefill(b, self.cfg.prompt_len.max(1)).as_nanos_f64() / f64::from(b);
        let steps = self.cfg.new_tokens.max(1) - 1;
        let decode = lat
            .decode_step(b, self.cfg.prompt_len + self.cfg.new_tokens)
            .as_nanos_f64()
            / f64::from(b);
        match rep.pool {
            PoolRole::Prefill => prefill,
            PoolRole::Decode => decode * f64::from(steps.max(1)),
            PoolRole::Unified => prefill + decode * f64::from(steps),
        }
    }

    fn scale_tick(&mut self, ctx: &mut SimContext<'_, FEvent>, now: SimTime) {
        let Some(auto) = &self.cfg.autoscale else {
            return;
        };
        let auto = *auto;
        let all_done = self.obs.completed_total() >= self.cfg.requests;
        if !all_done {
            let pools: &[PoolRole] = if self.disagg {
                &[PoolRole::Prefill, PoolRole::Decode]
            } else {
                &[PoolRole::Unified]
            };
            for &pool in pools {
                self.scale_pool(ctx, pool, auto, now);
            }
            ctx.schedule(now + auto.interval, FEvent::ScaleTick);
        }
        self.settle_drains(now);
    }

    fn scale_pool(
        &mut self,
        ctx: &mut SimContext<'_, FEvent>,
        pool: PoolRole,
        auto: crate::fleet::autoscale::AutoscaleConfig,
        now: SimTime,
    ) {
        // One counting pass over the pool: outstanding work, up/launching
        // tallies, the newest up replica (drain victim), and the pool's
        // seed platform — no per-tick index vectors.
        let mut outstanding = 0u32;
        let mut up_count = 0u32;
        let mut last_up = None;
        let mut launching = 0u32;
        let mut seed_platform = None;
        for i in 0..self.replicas.len() {
            if self.replicas[i].pool != pool {
                continue;
            }
            if seed_platform.is_none() {
                seed_platform = Some(self.replicas[i].platform_idx);
            }
            outstanding += self.backlog(i);
            match self.replicas[i].state {
                RState::Up => {
                    up_count += 1;
                    last_up = Some(i);
                }
                RState::Launching => launching += 1,
                _ => {}
            }
        }
        let pressure = f64::from(outstanding) / f64::from(up_count.max(1));
        if pressure > auto.high_load && (up_count + launching) < auto.max_per_pool {
            // Clone the pool's seed platform for the new replica.
            let platform_idx = seed_platform.expect("pool has at least one replica");
            let weights = self.cfg.model.weight_bytes_fp16();
            let launch_cost =
                auto.provision_delay + self.platforms[platform_idx].h2d_transfer(weights);
            let new_idx = self.replicas.len();
            self.replicas.push(ReplicaRt {
                platform_idx,
                pool,
                state: RState::Launching,
                queue: VecDeque::new(),
                actives: Vec::new(),
                busy: false,
                plan: Vec::new(),
            });
            self.links.push(LinkRt::default());
            self.obs.scaling.push(ScalingEvent {
                at: now,
                pool,
                replica: new_idx as u32,
                action: ScaleAction::LaunchRequested,
            });
            ctx.schedule(now + launch_cost, FEvent::ReplicaUp(new_idx));
        } else if pressure < auto.low_load && up_count > auto.min_per_pool && launching == 0 {
            // Drain the newest up replica; it keeps its backlog and
            // leaves once empty.
            let victim = last_up.expect("up set non-empty above");
            self.bill(now);
            self.replicas[victim].state = RState::Draining;
            self.obs.scaling.push(ScalingEvent {
                at: now,
                pool,
                replica: victim as u32,
                action: ScaleAction::DrainRequested,
            });
        }
    }

    /// Retires draining replicas whose backlog has fully emptied.
    fn settle_drains(&mut self, now: SimTime) {
        for i in 0..self.replicas.len() {
            let empty = self.replicas[i].state == RState::Draining
                && !self.replicas[i].busy
                && self.replicas[i].outstanding() == 0
                && self.links[i].depth() == 0;
            if empty {
                self.bill(now);
                self.replicas[i].state = RState::Down;
                self.scale_downs += 1;
                self.obs.scaling.push(ScalingEvent {
                    at: now,
                    pool: self.replicas[i].pool,
                    replica: i as u32,
                    action: ScaleAction::Down,
                });
            }
        }
    }

    fn live_count(&self) -> u32 {
        self.replicas
            .iter()
            .filter(|r| matches!(r.state, RState::Up | RState::Draining))
            .count() as u32
    }

    /// Accrues replica-seconds up to `now` at the current live count.
    /// Called before any state transition and once at the end.
    fn bill(&mut self, now: SimTime) {
        let live = self.live_count();
        self.replica_ns +=
            now.saturating_duration_since(self.last_bill).as_nanos_f64() * f64::from(live);
        self.last_bill = now;
        self.peak_live = self.peak_live.max(live);
    }

    /// The bill the run has provably accrued by `now`, without mutating
    /// billing state — what a cost-ceiling [`StopCondition`] compares
    /// against between events.
    fn accrued_replica_seconds(&self, now: SimTime) -> f64 {
        (self.replica_ns
            + now.saturating_duration_since(self.last_bill).as_nanos_f64()
                * f64::from(self.live_count()))
            / 1e9
    }

    fn sample(&mut self, now: SimTime) {
        let mut prefill_queue = 0u32;
        let mut decode_queue = 0u32;
        let mut running = 0u32;
        for rep in &self.replicas {
            running += rep.actives.len() as u32;
            if rep.pool == PoolRole::Decode {
                decode_queue += rep.queue.len() as u32;
            } else {
                prefill_queue += rep.queue.len() as u32;
            }
        }
        let handoff_queued: u32 = self.links.iter().map(|l| l.queue.len() as u32).sum();
        let handoff_inflight = self.links.iter().filter(|l| l.inflight.is_some()).count() as u32;
        let live = self.live_count();
        self.peak_live = self.peak_live.max(live);
        self.obs.push_sample(FleetSample {
            at: now,
            prefill_queue,
            decode_queue,
            running,
            handoff_queued,
            handoff_inflight,
            live_replicas: live,
            arrived_total: self.obs.arrived_total(),
            completed_total: self.obs.completed_total(),
        });
    }
}

/// Runs the fleet simulation, returning the scalar report.
///
/// # Panics
///
/// Panics if the configuration fails [`FleetConfig::validate`] — front
/// ends wanting a graceful error path validate first.
#[must_use]
pub fn simulate_fleet(cfg: &FleetConfig) -> FleetReport {
    simulate_fleet_traced(cfg).0
}

/// Runs the fleet simulation under `stop`, aborting the moment a budget
/// is blown. An aborted run returns the truncated-but-honest report of
/// the simulated prefix with [`FleetReport::aborted`] set; a run no
/// budget stops is byte-identical to [`simulate_fleet`].
///
/// # Panics
///
/// Panics if the configuration fails [`FleetConfig::validate`].
#[must_use]
pub fn simulate_fleet_bounded(cfg: &FleetConfig, stop: StopCondition) -> FleetReport {
    run_fleet(cfg, stop).0
}

/// Runs the fleet simulation and additionally returns the full
/// [`FleetTrace`] recording (lifecycles, conservation-checked samples,
/// scaling events).
///
/// # Panics
///
/// Panics if the configuration fails [`FleetConfig::validate`].
#[must_use]
pub fn simulate_fleet_traced(cfg: &FleetConfig) -> (FleetReport, FleetTrace) {
    run_fleet(cfg, StopCondition::UNBOUNDED)
}

fn run_fleet(cfg: &FleetConfig, stop: StopCondition) -> (FleetReport, FleetTrace) {
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    // One platform entry (and LatencyModel) per distinct platform name;
    // replicas reference them by index so a 4-replica group shares one
    // memo cache.
    let mut platforms: Vec<Platform> = Vec::new();
    let mut replicas: Vec<ReplicaRt> = Vec::new();
    for g in &cfg.spec.groups {
        let platform_idx = match platforms.iter().position(|p| p.name == g.platform.name) {
            Some(i) => i,
            None => {
                platforms.push(g.platform.clone());
                platforms.len() - 1
            }
        };
        for _ in 0..g.count {
            replicas.push(ReplicaRt {
                platform_idx,
                pool: g.role,
                state: RState::Up,
                queue: VecDeque::new(),
                actives: Vec::with_capacity(cfg.max_batch as usize),
                busy: false,
                plan: Vec::new(),
            });
        }
    }
    let lat: Vec<LatencyModel> = platforms
        .iter()
        .map(|p| LatencyModel::new(p.clone(), cfg.model.clone()))
        .collect();
    let links: Vec<LinkRt> = (0..replicas.len()).map(|_| LinkRt::default()).collect();

    let arrivals = cfg.arrivals.generate(
        cfg.requests as usize,
        cfg.prompt_len,
        cfg.new_tokens,
        cfg.seed,
    );
    let first_arrival = arrivals.first().map(|r| r.arrival);
    let mut sim: Simulator<FEvent> = Simulator::new();
    for req in &arrivals {
        sim.schedule(req.arrival, FEvent::Arrival(*req));
    }
    if let Some(auto) = &cfg.autoscale {
        sim.schedule(SimTime::ZERO + auto.interval, FEvent::ScaleTick);
    }

    let initial_live = replicas.len() as u32;
    let disagg = cfg.spec.is_disaggregated();
    // Preallocate the whole-run observation storage: every request's
    // lifecycle takes a bounded number of events (arrive/admit/first
    // token/complete, plus the three handoff events when disaggregated),
    // so the recording hot path never reallocates mid-simulation.
    let mut obs = FleetTrace::new(cfg.model.name.clone(), cfg.spec.label());
    obs.reserve(cfg.requests, if disagg { 7 } else { 4 });
    let mut floor = FleetFloor {
        cfg,
        lat,
        kv: KvSpec::for_model(&cfg.model, KvSpec::DEFAULT_BLOCK_TOKENS),
        links,
        disagg,
        rr_arrival: 0,
        rr_handoff: 0,
        finished: Vec::with_capacity(cfg.requests as usize),
        scratch_actives: Vec::with_capacity(cfg.max_batch as usize),
        scratch_handoffs: Vec::with_capacity(if disagg { cfg.max_batch as usize } else { 0 }),
        eligible_buf: Vec::with_capacity(replicas.len()),
        replicas,
        last_completion: SimTime::ZERO,
        obs,
        handoffs: 0,
        handoff_bytes: 0,
        handoff_waits: Vec::with_capacity(if disagg { cfg.requests as usize } else { 0 }),
        handoff_transfer_ns: 0.0,
        scale_ups: 0,
        scale_downs: 0,
        peak_live: initial_live,
        replica_ns: 0.0,
        last_bill: SimTime::ZERO,
        platforms,
    };

    let mut aborted = false;
    if stop.is_unbounded() {
        sim.run(|ctx, event| floor.handle(ctx, event));
    } else {
        // Same event loop, one step at a time, with incremental miss and
        // bill bookkeeping between steps. The handled events are
        // byte-identical to `sim.run` up to the abort instant, so a run
        // no budget stops produces the unbounded run's exact report.
        let mut guard = StopGuard::new(stop, cfg.slo);
        let mut noted = 0usize;
        while sim.step(|ctx, event| floor.handle(ctx, event)) {
            while noted < floor.finished.len() {
                let (ttft, e2e) = floor.finished[noted];
                noted += 1;
                guard.note(ttft, e2e);
            }
            if guard.miss_budget_blown()
                || (guard.wants_cost()
                    && guard.cost_blown(floor.accrued_replica_seconds(sim.now())))
            {
                aborted = true;
                break;
            }
        }
    }
    let bill_to = if aborted {
        // Bill the span actually simulated — the truncated report still
        // prices what the run rented before it was called off.
        sim.now().max(floor.last_completion).max(floor.last_bill)
    } else {
        floor.last_completion.max(floor.last_bill)
    };
    floor.bill(bill_to);

    let mut report = assemble_fleet_report(cfg, &floor, first_arrival);
    report.aborted = aborted;
    (report, floor.obs)
}

fn assemble_fleet_report(
    cfg: &FleetConfig,
    floor: &FleetFloor<'_>,
    first_arrival: Option<SimTime>,
) -> FleetReport {
    let latencies = &floor.finished;
    let ttfts: Vec<f64> = latencies.iter().map(|(t, _)| t.as_nanos_f64()).collect();
    let e2es: Vec<f64> = latencies.iter().map(|(_, e)| e.as_nanos_f64()).collect();
    let makespan = floor
        .last_completion
        .saturating_duration_since(first_arrival.unwrap_or(SimTime::ZERO));
    let completed = latencies.len() as u32;
    let total_tokens = u64::from(completed) * u64::from(cfg.new_tokens.max(1));
    let throughput_tok_s = if completed == 0 {
        0.0
    } else {
        total_tokens as f64 / makespan.as_secs_f64().max(1e-12)
    };
    let d = |v: f64| SimDuration::from_nanos_f64(v);
    FleetReport {
        completed,
        ttft_p50: d(percentile(&ttfts, 50.0)),
        ttft_p95: d(percentile(&ttfts, 95.0)),
        ttft_p99: d(percentile(&ttfts, 99.0)),
        e2e_p50: d(percentile(&e2es, 50.0)),
        e2e_p95: d(percentile(&e2es, 95.0)),
        throughput_tok_s,
        makespan,
        slo: SloReport::evaluate(cfg.slo, latencies, cfg.new_tokens.max(1), makespan),
        handoffs: floor.handoffs,
        handoff_bytes: floor.handoff_bytes,
        handoff_wait_p50: d(percentile(&floor.handoff_waits, 50.0)),
        handoff_wait_p95: d(percentile(&floor.handoff_waits, 95.0)),
        handoff_transfer_total: d(floor.handoff_transfer_ns),
        scale_ups: floor.scale_ups,
        scale_downs: floor.scale_downs,
        peak_replicas: floor.peak_live,
        replica_seconds: floor.replica_ns / 1e9,
        aborted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::arrivals::ArrivalProcess;
    use crate::fleet::autoscale::AutoscaleConfig;
    use crate::fleet::spec::FleetSpec;
    use crate::observe::SloTargets;
    use skip_hw::{Coupling, Interconnect, PlatformBuilder};
    use skip_llm::zoo;

    fn base(spec: FleetSpec) -> FleetConfig {
        FleetConfig {
            spec,
            model: zoo::gpt2(),
            max_batch: 8,
            requests: 40,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 60.0 },
            prompt_len: 128,
            new_tokens: 6,
            seed: 13,
            slo: SloTargets::default(),
            router: FleetRouterPolicy::CostModelJsq,
            policy: FleetBatchPolicy::Continuous,
            autoscale: None,
        }
    }

    #[test]
    fn homogeneous_unified_fleet_completes_and_conserves() {
        let cfg = base(FleetSpec::homogeneous(Platform::intel_h100(), 3));
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 40);
        assert!(trace.conserves_requests());
        assert_eq!(report.handoffs, 0, "unified fleets never hand off");
        assert_eq!(report.handoff_bytes, 0);
        assert!(report.ttft_p50 > SimDuration::ZERO);
        assert!(report.e2e_p50 >= report.ttft_p50);
        assert_eq!(report.peak_replicas, 3);
        assert!(report.replica_seconds > 0.0);
    }

    #[test]
    fn disaggregated_fleet_hands_off_every_multi_token_request() {
        let cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            2,
            Platform::intel_h100(),
            2,
        ));
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 40);
        assert!(trace.conserves_requests());
        // new_tokens > 1, so every request crosses the handoff link once.
        assert_eq!(report.handoffs, 40);
        let spec = KvSpec::for_model(&cfg.model, KvSpec::DEFAULT_BLOCK_TOKENS);
        assert_eq!(
            report.handoff_bytes,
            40 * spec.handoff_bytes(u64::from(cfg.prompt_len) + 1),
            "handoff bytes must be block-granular KV for prompt + first token"
        );
        assert!(report.handoff_transfer_total > SimDuration::ZERO);
        // Lifecycles show the full disaggregated path.
        let lc = &trace.lifecycles[0];
        assert!(lc
            .events
            .iter()
            .any(|e| matches!(e.kind, LifecycleKind::HandoffQueued { .. })));
        assert!(lc
            .events
            .iter()
            .any(|e| matches!(e.kind, LifecycleKind::DecodeAdmitted { .. })));
    }

    #[test]
    fn single_token_requests_complete_at_the_prefill_pool() {
        let mut cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            1,
            Platform::intel_h100(),
            1,
        ));
        cfg.new_tokens = 1;
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 40);
        assert_eq!(report.handoffs, 0, "nothing to decode, nothing to move");
        assert!(trace.conserves_requests());
    }

    /// The KV handoff is priced by the coupling model: the same topology
    /// with the prefill side's link degraded from NVLink-C2C to PCIe Gen4
    /// must spend strictly more time on the interconnect and finish no
    /// sooner.
    #[test]
    fn handoff_cost_follows_the_coupling() {
        let cc = base(FleetSpec::disaggregated(
            Platform::gh200(),
            1,
            Platform::intel_h100(),
            1,
        ));
        let mut lc = cc.clone();
        lc.spec.groups[0].platform = PlatformBuilder::from(Platform::gh200())
            .name("gh200_pcie")
            .interconnect(Interconnect::pcie_gen4())
            .coupling(Coupling::Loose)
            .build();
        let r_cc = simulate_fleet(&cc);
        let r_lc = simulate_fleet(&lc);
        assert_eq!(r_cc.handoff_bytes, r_lc.handoff_bytes, "same bytes moved");
        assert!(
            r_lc.handoff_transfer_total > r_cc.handoff_transfer_total,
            "PCIe Gen4 drain must occupy the link longer than NVLink-C2C \
             ({} vs {})",
            r_lc.handoff_transfer_total,
            r_cc.handoff_transfer_total
        );
    }

    /// Satellite regression: on a *heterogeneous* fleet the load-aware
    /// routers must diverge from round-robin — the serving_policies
    /// finding (JSQ ≡ RR) was an artifact of identical replicas.
    #[test]
    fn jsq_beats_round_robin_on_a_heterogeneous_fleet() {
        let spec = FleetSpec {
            groups: vec![
                super::super::spec::ReplicaGroup {
                    platform: Platform::intel_h100(),
                    count: 1,
                    role: PoolRole::Unified,
                },
                super::super::spec::ReplicaGroup {
                    platform: Platform::gh200(),
                    count: 1,
                    role: PoolRole::Unified,
                },
            ],
        };
        let mut cfg = base(spec);
        cfg.requests = 60;
        cfg.arrivals = ArrivalProcess::Poisson { rate_per_s: 120.0 };
        cfg.router = FleetRouterPolicy::RoundRobin;
        let rr = simulate_fleet(&cfg);
        cfg.router = FleetRouterPolicy::JoinShortestQueue;
        let jsq = simulate_fleet(&cfg);
        cfg.router = FleetRouterPolicy::CostModelJsq;
        let cost = simulate_fleet(&cfg);
        assert_ne!(
            rr.e2e_p50, jsq.e2e_p50,
            "JSQ must not degenerate to round-robin when replicas differ"
        );
        assert!(
            cost.e2e_p50 <= rr.e2e_p50,
            "cost-model JSQ must not lose to blind rotation: {} vs {}",
            cost.e2e_p50,
            rr.e2e_p50
        );
    }

    /// The PR 5 finding still holds where it should: on a homogeneous
    /// fleet the cost model is a constant factor, so cost-JSQ and plain
    /// JSQ pick identical replicas and produce identical reports.
    #[test]
    fn cost_jsq_degenerates_to_jsq_on_a_homogeneous_fleet() {
        let mut cfg = base(FleetSpec::homogeneous(Platform::amd_a100(), 4));
        cfg.requests = 50;
        cfg.router = FleetRouterPolicy::JoinShortestQueue;
        let (r_jsq, t_jsq) = simulate_fleet_traced(&cfg);
        cfg.router = FleetRouterPolicy::CostModelJsq;
        let (r_cost, t_cost) = simulate_fleet_traced(&cfg);
        assert_eq!(r_jsq, r_cost);
        assert_eq!(t_jsq.lifecycles, t_cost.lifecycles);
    }

    #[test]
    fn autoscaler_grows_under_burst_and_drains_after() {
        let mut cfg = base(FleetSpec::homogeneous(Platform::intel_h100(), 1));
        cfg.requests = 120;
        cfg.arrivals = ArrivalProcess::Bursty {
            base_rate_per_s: 5.0,
            burst_rate_per_s: 400.0,
            burst_len: SimDuration::from_millis(500),
            lull_len: SimDuration::from_secs(2),
        };
        cfg.autoscale = Some(AutoscaleConfig {
            interval: SimDuration::from_millis(100),
            high_load: 4.0,
            low_load: 1.0,
            min_per_pool: 1,
            max_per_pool: 6,
            provision_delay: SimDuration::from_millis(200),
        });
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 120);
        assert!(trace.conserves_requests());
        assert!(report.scale_ups > 0, "the burst must trigger scale-up");
        assert!(
            report.peak_replicas > 1,
            "launched replicas must have come up"
        );
        assert!(
            trace
                .scaling
                .iter()
                .any(|e| e.action == ScaleAction::LaunchRequested),
            "scaling events must be recorded"
        );
        assert!(report.replica_seconds > 0.0);
    }

    /// Launch cost is coupling-derived: the same scale-up on gh200 pays a
    /// C2C weight load, on amd_a100 a PCIe Gen4 one — visible in when the
    /// first replica comes up.
    #[test]
    fn replica_launch_pays_the_weight_load_over_the_interconnect() {
        let model = zoo::gpt2();
        let weights = model.weight_bytes_fp16();
        let gh = Platform::gh200().h2d_transfer(weights);
        let amd = Platform::amd_a100().h2d_transfer(weights);
        assert!(
            amd > gh * 5,
            "PCIe Gen4 weight load must dwarf NVLink-C2C: {amd} vs {gh}"
        );
    }

    #[test]
    fn fleet_simulation_is_deterministic() {
        let mut cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            2,
            Platform::amd_a100(),
            2,
        ));
        cfg.arrivals = ArrivalProcess::Diurnal {
            base_rate_per_s: 20.0,
            peak_rate_per_s: 200.0,
            period: SimDuration::from_secs(2),
        };
        cfg.autoscale = Some(AutoscaleConfig::default());
        let (ra, ta) = simulate_fleet_traced(&cfg);
        let (rb, tb) = simulate_fleet_traced(&cfg);
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn invalid_config_panics_with_the_validation_message() {
        let mut cfg = base(FleetSpec::homogeneous(Platform::gh200(), 1));
        cfg.max_batch = 0;
        let _ = simulate_fleet(&cfg);
    }

    /// Chunked prefill on a disaggregated fleet: every multi-token
    /// request still crosses the handoff link exactly once — the chunk
    /// plan must trigger the same handoff-aware retire as continuous
    /// batching once the final chunk lands.
    #[test]
    fn chunked_prefill_composes_with_disaggregation() {
        let mut cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            2,
            Platform::intel_h100(),
            2,
        ));
        cfg.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 32 };
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 40);
        assert!(trace.conserves_requests());
        assert_eq!(report.handoffs, 40);
        assert!(report.ttft_p50 > SimDuration::ZERO);
        assert!(report.e2e_p50 >= report.ttft_p50);
        // Every lifecycle emits exactly one first token.
        for lc in &trace.lifecycles {
            let firsts = lc
                .events
                .iter()
                .filter(|e| matches!(e.kind, LifecycleKind::FirstToken))
                .count();
            assert_eq!(firsts, 1, "request {} first-token count", lc.id);
        }
    }

    /// A prompt that fits one chunk budget prefills in a single
    /// iteration; slicing the same prompt into eight chunks serializes
    /// eight budgeted iterations, so the first token must come later.
    #[test]
    fn tighter_chunk_budgets_delay_the_first_token() {
        let mut wide = base(FleetSpec::homogeneous(Platform::intel_h100(), 2));
        wide.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 1024 };
        let mut narrow = wide.clone();
        narrow.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 16 };
        let w = simulate_fleet(&wide);
        let n = simulate_fleet(&narrow);
        assert_eq!(w.completed, 40);
        assert_eq!(n.completed, 40);
        assert!(
            n.ttft_p50 > w.ttft_p50,
            "16-token chunks must stretch TTFT past one-shot prefill: {} vs {}",
            n.ttft_p50,
            w.ttft_p50
        );
    }

    #[test]
    fn chunked_fleet_simulation_is_deterministic() {
        let mut cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            1,
            Platform::amd_a100(),
            2,
        ));
        cfg.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 48 };
        cfg.autoscale = Some(AutoscaleConfig::default());
        let (ra, ta) = simulate_fleet_traced(&cfg);
        let (rb, tb) = simulate_fleet_traced(&cfg);
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
    }
}
