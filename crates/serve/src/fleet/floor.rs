//! The fleet serving front: a thin constructor over the unified floor.
//!
//! This module owns the public fleet API — [`simulate_fleet`],
//! [`simulate_fleet_traced`], and the bounded variant. The event loop
//! itself lives in `crate::unified`; this front builds the full-strength
//! [`ReplicaSet`](crate::unified::ReplicaSet) the single-node front
//! degenerates:
//!
//! * each replica prices iterations through its **own platform's**
//!   [`LatencyModel`], so a gh200 and an amd_a100 replica in one fleet
//!   charge different prefill/decode costs (deduped by platform name, so
//!   a 4-replica group shares one memo cache);
//! * a disaggregated fleet splits replicas into a prefill pool and a
//!   decode pool, connected by per-destination **handoff links**: a
//!   finished prefill's KV blocks queue on the destination's link and
//!   occupy it for `src.kv_handoff_time(dst, bytes)` — one transfer at a
//!   time per destination, so the interconnect itself can back up;
//! * an optional **autoscaler** ticks on a fixed interval and
//!   launches/drains replicas against load watermarks, with launch cost
//!   priced as provisioning delay plus the coupling-derived weight load.

use std::collections::VecDeque;

use skip_des::{percentile, SimDuration, SimTime, Simulator};
use skip_hw::Platform;
use skip_mem::KvSpec;

use crate::fleet::observe::{FleetReport, FleetTrace};
use crate::fleet::spec::FleetConfig;
use crate::latency::LatencyModel;
use crate::observe::SloReport;
use crate::policy::ReplicaState;
use crate::stop::StopCondition;
use crate::unified::{
    run_unified, unit_cost_ns, CostBasis, Event, FloorObs, LinkRt, RState, ReplicaMeta,
    ReplicaSet, UnifiedFloor,
};

/// Runs the fleet simulation, returning the scalar report.
///
/// # Panics
///
/// Panics if the configuration fails [`FleetConfig::validate`] — front
/// ends wanting a graceful error path validate first.
#[must_use]
pub fn simulate_fleet(cfg: &FleetConfig) -> FleetReport {
    simulate_fleet_traced(cfg).0
}

/// Runs the fleet simulation under `stop`, aborting the moment a budget
/// is blown. An aborted run returns the truncated-but-honest report of
/// the simulated prefix with [`FleetReport::aborted`] set; a run no
/// budget stops is byte-identical to [`simulate_fleet`].
///
/// # Panics
///
/// Panics if the configuration fails [`FleetConfig::validate`].
#[must_use]
pub fn simulate_fleet_bounded(cfg: &FleetConfig, stop: StopCondition) -> FleetReport {
    run_fleet(cfg, stop).0
}

/// Runs the fleet simulation and additionally returns the full
/// [`FleetTrace`] recording (lifecycles, conservation-checked samples,
/// scaling events).
///
/// # Panics
///
/// Panics if the configuration fails [`FleetConfig::validate`].
#[must_use]
pub fn simulate_fleet_traced(cfg: &FleetConfig) -> (FleetReport, FleetTrace) {
    run_fleet(cfg, StopCondition::UNBOUNDED)
}

fn run_fleet(cfg: &FleetConfig, stop: StopCondition) -> (FleetReport, FleetTrace) {
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    // One platform entry (and LatencyModel) per distinct platform name;
    // replicas reference them by index so a 4-replica group shares one
    // memo cache.
    let mut platforms: Vec<Platform> = Vec::new();
    let mut meta: Vec<ReplicaMeta> = Vec::new();
    for g in &cfg.spec.groups {
        let platform_idx = match platforms.iter().position(|p| p.name == g.platform.name) {
            Some(i) => i,
            None => {
                platforms.push(g.platform.clone());
                platforms.len() - 1
            }
        };
        for _ in 0..g.count {
            meta.push(ReplicaMeta {
                platform_idx,
                pool: g.role,
                state: RState::Up,
                unit_cost_ns: 0.0,
            });
        }
    }
    let lat: Vec<LatencyModel> = platforms
        .iter()
        .map(|p| LatencyModel::new(p.clone(), cfg.model.clone()))
        .collect();
    // The cost-model router's exchange rate, one per replica. Pure and
    // memoized, so pricing eagerly here only warms the latency caches.
    for m in &mut meta {
        m.unit_cost_ns = unit_cost_ns(
            &lat[m.platform_idx],
            m.pool,
            cfg.max_batch,
            cfg.prompt_len,
            cfg.new_tokens,
        );
    }
    let n = meta.len();
    let links: Vec<LinkRt> = (0..n).map(|_| LinkRt::default()).collect();

    let arrivals = cfg.arrivals.generate(
        cfg.requests as usize,
        cfg.prompt_len,
        cfg.new_tokens,
        cfg.seed,
    );
    let first_arrival = arrivals.first().map(|r| r.arrival);
    let mut sim: Simulator<Event> = Simulator::new();
    for req in &arrivals {
        sim.schedule(req.arrival, Event::Arrival(*req));
    }
    if let Some(auto) = &cfg.autoscale {
        sim.schedule(SimTime::ZERO + auto.interval, Event::ScaleTick);
    }

    let initial_live = n as u32;
    let disagg = cfg.spec.is_disaggregated();
    // Preallocate the whole-run observation storage: every request's
    // lifecycle takes a bounded number of events (arrive/admit/first
    // token/complete, plus the three handoff events when disaggregated),
    // so the recording hot path never reallocates mid-simulation.
    let mut obs = FleetTrace::new(cfg.model.name.clone(), cfg.spec.label());
    obs.reserve(cfg.requests, if disagg { 7 } else { 4 });
    let mut floor = UnifiedFloor {
        set: ReplicaSet {
            platforms,
            lat,
            meta,
            links,
            arrival_router: cfg.router.build(),
            // A second instance, so round-robin handoff dispatch keeps
            // its own cursor, independent of arrival dispatch.
            handoff_router: cfg.router.build(),
            kv: KvSpec::for_model(&cfg.model, KvSpec::DEFAULT_BLOCK_TOKENS),
            disagg,
            targeted: true,
            autoscale: cfg.autoscale,
            weight_bytes: cfg.model.weight_bytes_fp16(),
            handoffs: 0,
            handoff_bytes: 0,
            handoff_waits: Vec::with_capacity(if disagg { cfg.requests as usize } else { 0 }),
            handoff_transfer_ns: 0.0,
            scale_ups: 0,
            scale_downs: 0,
            peak_live: initial_live,
            replica_ns: 0.0,
            last_bill: SimTime::ZERO,
        },
        policy: cfg.policy.build(cfg.max_batch),
        queues: (0..n).map(|_| VecDeque::new()).collect(),
        queue_of: (0..n).collect(),
        states: (0..n)
            .map(|_| ReplicaState {
                actives: Vec::with_capacity(cfg.max_batch as usize),
                ..ReplicaState::default()
            })
            .collect(),
        mem: None,
        finished: Vec::with_capacity(cfg.requests as usize),
        last_completion: SimTime::ZERO,
        // Fleet policies admit at every boundary, so no flush timers.
        flush: Vec::new(),
        obs: FloorObs::Fleet(obs),
        expired_buf: Vec::new(),
        load_buf: Vec::with_capacity(n),
        scratch_actives: Vec::with_capacity(cfg.max_batch as usize),
        scratch_handoffs: Vec::with_capacity(if disagg { cfg.max_batch as usize } else { 0 }),
        prompt_len: cfg.prompt_len,
        new_tokens: cfg.new_tokens,
        max_batch: cfg.max_batch,
        requests: cfg.requests,
    };

    let aborted = run_unified(&mut floor, &mut sim, stop, cfg.slo, CostBasis::Billed);

    let bill_to = if aborted {
        // Bill the span actually simulated — the truncated report still
        // prices what the run rented before it was called off.
        sim.now()
            .max(floor.last_completion)
            .max(floor.set.last_bill)
    } else {
        floor.last_completion.max(floor.set.last_bill)
    };
    floor.set.bill(bill_to);

    let mut report = assemble_fleet_report(cfg, &floor, first_arrival);
    report.aborted = aborted;
    let FloorObs::Fleet(trace) = floor.obs else {
        unreachable!("fleet front records a FleetTrace")
    };
    (report, trace)
}

fn assemble_fleet_report(
    cfg: &FleetConfig,
    floor: &UnifiedFloor,
    first_arrival: Option<SimTime>,
) -> FleetReport {
    let latencies: Vec<(SimDuration, SimDuration)> =
        floor.finished.iter().map(|f| (f.ttft, f.e2e)).collect();
    let ttfts: Vec<f64> = latencies.iter().map(|(t, _)| t.as_nanos_f64()).collect();
    let e2es: Vec<f64> = latencies.iter().map(|(_, e)| e.as_nanos_f64()).collect();
    let makespan = floor
        .last_completion
        .saturating_duration_since(first_arrival.unwrap_or(SimTime::ZERO));
    let completed = latencies.len() as u32;
    let total_tokens = u64::from(completed) * u64::from(cfg.new_tokens.max(1));
    let throughput_tok_s = if completed == 0 {
        0.0
    } else {
        total_tokens as f64 / makespan.as_secs_f64().max(1e-12)
    };
    let d = |v: f64| SimDuration::from_nanos_f64(v);
    let set = &floor.set;
    FleetReport {
        completed,
        ttft_p50: d(percentile(&ttfts, 50.0)),
        ttft_p95: d(percentile(&ttfts, 95.0)),
        ttft_p99: d(percentile(&ttfts, 99.0)),
        e2e_p50: d(percentile(&e2es, 50.0)),
        e2e_p95: d(percentile(&e2es, 95.0)),
        throughput_tok_s,
        makespan,
        slo: SloReport::evaluate(cfg.slo, &latencies, cfg.new_tokens.max(1), makespan),
        handoffs: set.handoffs,
        handoff_bytes: set.handoff_bytes,
        handoff_wait_p50: d(percentile(&set.handoff_waits, 50.0)),
        handoff_wait_p95: d(percentile(&set.handoff_waits, 95.0)),
        handoff_transfer_total: d(set.handoff_transfer_ns),
        scale_ups: set.scale_ups,
        scale_downs: set.scale_downs,
        peak_replicas: set.peak_live,
        replica_seconds: set.replica_ns / 1e9,
        aborted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::arrivals::ArrivalProcess;
    use crate::fleet::autoscale::{AutoscaleConfig, ScaleAction};
    use crate::fleet::spec::{FleetBatchPolicy, FleetRouterPolicy, FleetSpec, PoolRole};
    use crate::observe::{LifecycleKind, SloTargets};
    use skip_hw::{Coupling, Interconnect, PlatformBuilder};
    use skip_llm::zoo;

    fn base(spec: FleetSpec) -> FleetConfig {
        FleetConfig {
            spec,
            model: zoo::gpt2(),
            max_batch: 8,
            requests: 40,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 60.0 },
            prompt_len: 128,
            new_tokens: 6,
            seed: 13,
            slo: SloTargets::default(),
            router: FleetRouterPolicy::CostModelJsq,
            policy: FleetBatchPolicy::Continuous,
            autoscale: None,
        }
    }

    #[test]
    fn homogeneous_unified_fleet_completes_and_conserves() {
        let cfg = base(FleetSpec::homogeneous(Platform::intel_h100(), 3));
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 40);
        assert!(trace.conserves_requests());
        assert_eq!(report.handoffs, 0, "unified fleets never hand off");
        assert_eq!(report.handoff_bytes, 0);
        assert!(report.ttft_p50 > SimDuration::ZERO);
        assert!(report.e2e_p50 >= report.ttft_p50);
        assert_eq!(report.peak_replicas, 3);
        assert!(report.replica_seconds > 0.0);
    }

    #[test]
    fn disaggregated_fleet_hands_off_every_multi_token_request() {
        let cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            2,
            Platform::intel_h100(),
            2,
        ));
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 40);
        assert!(trace.conserves_requests());
        // new_tokens > 1, so every request crosses the handoff link once.
        assert_eq!(report.handoffs, 40);
        let spec = KvSpec::for_model(&cfg.model, KvSpec::DEFAULT_BLOCK_TOKENS);
        assert_eq!(
            report.handoff_bytes,
            40 * spec.handoff_bytes(u64::from(cfg.prompt_len) + 1),
            "handoff bytes must be block-granular KV for prompt + first token"
        );
        assert!(report.handoff_transfer_total > SimDuration::ZERO);
        // Lifecycles show the full disaggregated path.
        let lc = &trace.lifecycles[0];
        assert!(lc
            .events
            .iter()
            .any(|e| matches!(e.kind, LifecycleKind::HandoffQueued { .. })));
        assert!(lc
            .events
            .iter()
            .any(|e| matches!(e.kind, LifecycleKind::DecodeAdmitted { .. })));
    }

    #[test]
    fn single_token_requests_complete_at_the_prefill_pool() {
        let mut cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            1,
            Platform::intel_h100(),
            1,
        ));
        cfg.new_tokens = 1;
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 40);
        assert_eq!(report.handoffs, 0, "nothing to decode, nothing to move");
        assert!(trace.conserves_requests());
    }

    /// The KV handoff is priced by the coupling model: the same topology
    /// with the prefill side's link degraded from NVLink-C2C to PCIe Gen4
    /// must spend strictly more time on the interconnect and finish no
    /// sooner.
    #[test]
    fn handoff_cost_follows_the_coupling() {
        let cc = base(FleetSpec::disaggregated(
            Platform::gh200(),
            1,
            Platform::intel_h100(),
            1,
        ));
        let mut lc = cc.clone();
        lc.spec.groups[0].platform = PlatformBuilder::from(Platform::gh200())
            .name("gh200_pcie")
            .interconnect(Interconnect::pcie_gen4())
            .coupling(Coupling::Loose)
            .build();
        let r_cc = simulate_fleet(&cc);
        let r_lc = simulate_fleet(&lc);
        assert_eq!(r_cc.handoff_bytes, r_lc.handoff_bytes, "same bytes moved");
        assert!(
            r_lc.handoff_transfer_total > r_cc.handoff_transfer_total,
            "PCIe Gen4 drain must occupy the link longer than NVLink-C2C \
             ({} vs {})",
            r_lc.handoff_transfer_total,
            r_cc.handoff_transfer_total
        );
    }

    /// Satellite regression: on a *heterogeneous* fleet the load-aware
    /// routers must diverge from round-robin — the serving_policies
    /// finding (JSQ ≡ RR) was an artifact of identical replicas.
    #[test]
    fn jsq_beats_round_robin_on_a_heterogeneous_fleet() {
        let spec = FleetSpec {
            groups: vec![
                super::super::spec::ReplicaGroup {
                    platform: Platform::intel_h100(),
                    count: 1,
                    role: PoolRole::Unified,
                },
                super::super::spec::ReplicaGroup {
                    platform: Platform::gh200(),
                    count: 1,
                    role: PoolRole::Unified,
                },
            ],
        };
        let mut cfg = base(spec);
        cfg.requests = 60;
        cfg.arrivals = ArrivalProcess::Poisson { rate_per_s: 120.0 };
        cfg.router = FleetRouterPolicy::RoundRobin;
        let rr = simulate_fleet(&cfg);
        cfg.router = FleetRouterPolicy::JoinShortestQueue;
        let jsq = simulate_fleet(&cfg);
        cfg.router = FleetRouterPolicy::CostModelJsq;
        let cost = simulate_fleet(&cfg);
        assert_ne!(
            rr.e2e_p50, jsq.e2e_p50,
            "JSQ must not degenerate to round-robin when replicas differ"
        );
        assert!(
            cost.e2e_p50 <= rr.e2e_p50,
            "cost-model JSQ must not lose to blind rotation: {} vs {}",
            cost.e2e_p50,
            rr.e2e_p50
        );
    }

    /// The PR 5 finding still holds where it should: on a homogeneous
    /// fleet the cost model is a constant factor, so cost-JSQ and plain
    /// JSQ pick identical replicas and produce identical reports.
    #[test]
    fn cost_jsq_degenerates_to_jsq_on_a_homogeneous_fleet() {
        let mut cfg = base(FleetSpec::homogeneous(Platform::amd_a100(), 4));
        cfg.requests = 50;
        cfg.router = FleetRouterPolicy::JoinShortestQueue;
        let (r_jsq, t_jsq) = simulate_fleet_traced(&cfg);
        cfg.router = FleetRouterPolicy::CostModelJsq;
        let (r_cost, t_cost) = simulate_fleet_traced(&cfg);
        assert_eq!(r_jsq, r_cost);
        assert_eq!(t_jsq.lifecycles, t_cost.lifecycles);
    }

    #[test]
    fn autoscaler_grows_under_burst_and_drains_after() {
        let mut cfg = base(FleetSpec::homogeneous(Platform::intel_h100(), 1));
        cfg.requests = 120;
        cfg.arrivals = ArrivalProcess::Bursty {
            base_rate_per_s: 5.0,
            burst_rate_per_s: 400.0,
            burst_len: SimDuration::from_millis(500),
            lull_len: SimDuration::from_secs(2),
        };
        cfg.autoscale = Some(AutoscaleConfig {
            interval: SimDuration::from_millis(100),
            high_load: 4.0,
            low_load: 1.0,
            min_per_pool: 1,
            max_per_pool: 6,
            provision_delay: SimDuration::from_millis(200),
        });
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 120);
        assert!(trace.conserves_requests());
        assert!(report.scale_ups > 0, "the burst must trigger scale-up");
        assert!(
            report.peak_replicas > 1,
            "launched replicas must have come up"
        );
        assert!(
            trace
                .scaling
                .iter()
                .any(|e| e.action == ScaleAction::LaunchRequested),
            "scaling events must be recorded"
        );
        assert!(report.replica_seconds > 0.0);
    }

    /// Launch cost is coupling-derived: the same scale-up on gh200 pays a
    /// C2C weight load, on amd_a100 a PCIe Gen4 one — visible in when the
    /// first replica comes up.
    #[test]
    fn replica_launch_pays_the_weight_load_over_the_interconnect() {
        let model = zoo::gpt2();
        let weights = model.weight_bytes_fp16();
        let gh = Platform::gh200().h2d_transfer(weights);
        let amd = Platform::amd_a100().h2d_transfer(weights);
        assert!(
            amd > gh * 5,
            "PCIe Gen4 weight load must dwarf NVLink-C2C: {amd} vs {gh}"
        );
    }

    #[test]
    fn fleet_simulation_is_deterministic() {
        let mut cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            2,
            Platform::amd_a100(),
            2,
        ));
        cfg.arrivals = ArrivalProcess::Diurnal {
            base_rate_per_s: 20.0,
            peak_rate_per_s: 200.0,
            period: SimDuration::from_secs(2),
        };
        cfg.autoscale = Some(AutoscaleConfig::default());
        let (ra, ta) = simulate_fleet_traced(&cfg);
        let (rb, tb) = simulate_fleet_traced(&cfg);
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn invalid_config_panics_with_the_validation_message() {
        let mut cfg = base(FleetSpec::homogeneous(Platform::gh200(), 1));
        cfg.max_batch = 0;
        let _ = simulate_fleet(&cfg);
    }

    /// Chunked prefill on a disaggregated fleet: every multi-token
    /// request still crosses the handoff link exactly once — the chunk
    /// plan must trigger the same handoff-aware retire as continuous
    /// batching once the final chunk lands.
    #[test]
    fn chunked_prefill_composes_with_disaggregation() {
        let mut cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            2,
            Platform::intel_h100(),
            2,
        ));
        cfg.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 32 };
        let (report, trace) = simulate_fleet_traced(&cfg);
        assert_eq!(report.completed, 40);
        assert!(trace.conserves_requests());
        assert_eq!(report.handoffs, 40);
        assert!(report.ttft_p50 > SimDuration::ZERO);
        assert!(report.e2e_p50 >= report.ttft_p50);
        // Every lifecycle emits exactly one first token.
        for lc in &trace.lifecycles {
            let firsts = lc
                .events
                .iter()
                .filter(|e| matches!(e.kind, LifecycleKind::FirstToken))
                .count();
            assert_eq!(firsts, 1, "request {} first-token count", lc.id);
        }
    }

    /// A prompt that fits one chunk budget prefills in a single
    /// iteration; slicing the same prompt into eight chunks serializes
    /// eight budgeted iterations, so the first token must come later.
    #[test]
    fn tighter_chunk_budgets_delay_the_first_token() {
        let mut wide = base(FleetSpec::homogeneous(Platform::intel_h100(), 2));
        wide.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 1024 };
        let mut narrow = wide.clone();
        narrow.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 16 };
        let w = simulate_fleet(&wide);
        let n = simulate_fleet(&narrow);
        assert_eq!(w.completed, 40);
        assert_eq!(n.completed, 40);
        assert!(
            n.ttft_p50 > w.ttft_p50,
            "16-token chunks must stretch TTFT past one-shot prefill: {} vs {}",
            n.ttft_p50,
            w.ttft_p50
        );
    }

    #[test]
    fn chunked_fleet_simulation_is_deterministic() {
        let mut cfg = base(FleetSpec::disaggregated(
            Platform::gh200(),
            1,
            Platform::amd_a100(),
            2,
        ));
        cfg.policy = FleetBatchPolicy::ChunkedPrefill { chunk_tokens: 48 };
        cfg.autoscale = Some(AutoscaleConfig::default());
        let (ra, ta) = simulate_fleet_traced(&cfg);
        let (rb, tb) = simulate_fleet_traced(&cfg);
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
    }
}
