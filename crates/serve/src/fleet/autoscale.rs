//! Arrival-driven fleet scaling.
//!
//! A reactive autoscaler samples per-pool pressure (outstanding requests
//! per up replica) on a fixed tick and launches or drains replicas
//! against watermarks. Launching is not free: a new replica pays a
//! provisioning delay plus the time to load the model weights over its
//! platform's interconnect — the same coupling-priced `h2d_transfer`
//! every other byte in the simulator pays, which is why a gh200 replica
//! comes up faster than a PCIe-attached one despite identical weights.

use serde::{Deserialize, Serialize};
use skip_des::{SimDuration, SimTime};

use crate::fleet::spec::PoolRole;

/// Autoscaler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Time between scaling decisions.
    pub interval: SimDuration,
    /// Outstanding requests per up replica above which a pool scales up.
    pub high_load: f64,
    /// Outstanding requests per up replica below which a pool scales
    /// down.
    pub low_load: f64,
    /// Replicas a pool never drains below.
    pub min_per_pool: u32,
    /// Replicas a pool never grows beyond.
    pub max_per_pool: u32,
    /// Fixed provisioning delay before a launching replica starts its
    /// weight load (container start, scheduling, etc.).
    pub provision_delay: SimDuration,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            interval: SimDuration::from_millis(250),
            high_load: 8.0,
            low_load: 1.0,
            min_per_pool: 1,
            max_per_pool: 8,
            provision_delay: SimDuration::from_millis(500),
        }
    }
}

impl AutoscaleConfig {
    /// Checks the knobs for self-consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval.is_zero() {
            return Err("interval must be positive".into());
        }
        if !(self.high_load.is_finite() && self.high_load > 0.0) {
            return Err(format!(
                "high_load must be positive, got {}",
                self.high_load
            ));
        }
        if !(self.low_load.is_finite() && self.low_load >= 0.0) {
            return Err(format!(
                "low_load must be non-negative, got {}",
                self.low_load
            ));
        }
        if self.low_load >= self.high_load {
            return Err(format!(
                "low_load {} must sit below high_load {}",
                self.low_load, self.high_load
            ));
        }
        if self.min_per_pool == 0 {
            return Err(crate::config::check::at_least_one("min_per_pool"));
        }
        if self.max_per_pool < self.min_per_pool {
            return Err(format!(
                "max_per_pool {} below min_per_pool {}",
                self.max_per_pool, self.min_per_pool
            ));
        }
        Ok(())
    }
}

/// What a scaling decision did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleAction {
    /// A new replica started provisioning (delay + weight load pending).
    LaunchRequested,
    /// The replica finished its weight load and joined the pool.
    Up,
    /// The replica stopped accepting work and is finishing its backlog.
    DrainRequested,
    /// The drained replica left the pool.
    Down,
}

/// One autoscaler decision, recorded in the fleet trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingEvent {
    /// When the decision landed.
    pub at: SimTime,
    /// The pool it affected.
    pub pool: PoolRole,
    /// The replica index it affected.
    pub replica: u32,
    /// What happened.
    pub action: ScaleAction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(AutoscaleConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_inconsistent_knobs() {
        let ok = AutoscaleConfig::default();
        let cases: Vec<(AutoscaleConfig, &str)> = vec![
            (
                AutoscaleConfig {
                    interval: SimDuration::ZERO,
                    ..ok
                },
                "interval",
            ),
            (
                AutoscaleConfig {
                    high_load: 0.0,
                    ..ok
                },
                "high_load",
            ),
            (
                AutoscaleConfig {
                    low_load: 9.0,
                    ..ok
                },
                "below high_load",
            ),
            (
                AutoscaleConfig {
                    min_per_pool: 0,
                    ..ok
                },
                "min_per_pool",
            ),
            (
                AutoscaleConfig {
                    max_per_pool: 0,
                    ..ok
                },
                "max_per_pool",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "'{err}' should mention {needle}");
        }
    }
}
