//! Allocation budget of the simulation hot path.
//!
//! The interned-trace refactor removed the per-event `format!`/`String`
//! clones from the engine: event names are `NameId`s, the runtime API
//! names (`cudaLaunchKernel`, `Memcpy HtoD`, `aten::to`) are interned once
//! per engine run, and kernel names hash-hit after their first layer. What
//! remains on the hot path is amortized `Vec` growth plus one interning
//! per *distinct* name — so a full prefill forward must heap-allocate
//! fewer times than it simulates kernels (the pre-interning engine paid
//! several allocations per kernel: a `String` clone per event name plus a
//! `format!` per launch).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::Engine;
use skip_trace::TraceMeta;

/// System allocator wrapper counting every `alloc`/`realloc` call.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn engine_allocates_less_than_once_per_kernel() {
    let engine = Engine::new(Platform::intel_h100());
    let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);
    // Build the operator graph outside the measured window: the budget
    // under test is the *simulation* path, not workload construction.
    let graph = wl.graph();
    let input_bytes = wl.input_bytes();

    let before = ALLOCS.load(Ordering::Relaxed);
    let trace = engine.run_graph(&graph, input_bytes, TraceMeta::default());
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;

    let kernels = trace.kernels().len() as u64;
    assert!(kernels > 300, "expected a full prefill trace: {kernels}");
    assert!(
        allocs < kernels,
        "hot path allocated {allocs} times for {kernels} kernels \
         (pre-interning budget was >5 per kernel)"
    );
}
