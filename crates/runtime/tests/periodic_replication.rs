//! Differential tests for the periodic-layer replication fast path.
//!
//! [`Engine::run`] (fast path armed) must produce traces byte-identical —
//! same serialized JSON, so same interning order, IDs and timestamps — to
//! [`Engine::run_reference`] (every operator simulated) across the model
//! zoo × platform × eager-style-mode matrix. The zoo's graphs carry a
//! pseudo-random workspace-memset jitter that usually defeats period
//! detection (the fast path falls back, and must do so losslessly); graphs
//! with genuinely identical layers take the replication path, which the
//! engine's unit tests pin separately.

use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

fn assert_byte_identical(model: ModelConfig, batch: u32, seq_len: u32) {
    for platform in Platform::paper_trio() {
        let engine = Engine::new(platform);
        for mode in [ExecMode::Eager, ExecMode::FlashAttention2] {
            let wl = Workload::new(model.clone(), Phase::Prefill, batch, seq_len);
            let fast = serde_json::to_string(&engine.run(&wl, mode)).unwrap();
            let reference = serde_json::to_string(&engine.run_reference(&wl, mode)).unwrap();
            assert_eq!(
                fast,
                reference,
                "trace divergence: {} on {} in {}",
                model.name,
                engine.platform().name,
                mode.label()
            );
        }
    }
}

#[test]
fn zoo_traces_byte_identical_across_platforms_and_modes() {
    for model in zoo::table_iii() {
        assert_byte_identical(model, 1, 512);
    }
}

#[test]
fn remaining_zoo_models_byte_identical() {
    for model in [
        zoo::gpt2_medium(),
        zoo::bert_large(),
        zoo::llama31_8b(),
        zoo::qwen25_05b(),
    ] {
        assert_byte_identical(model, 1, 512);
    }
}

#[test]
fn gpu_bound_batches_byte_identical() {
    // Large batch pushes the paper's GPU-bound regime (saturated stream):
    // the saturated replication case, if triggered, must stay exact.
    assert_byte_identical(zoo::gpt2(), 64, 512);
    assert_byte_identical(zoo::bert_base_uncased(), 64, 512);
}

#[test]
fn decode_phase_byte_identical() {
    for model in [zoo::gpt2(), zoo::llama32_1b()] {
        for platform in Platform::paper_trio() {
            let engine = Engine::new(platform);
            for mode in [ExecMode::Eager, ExecMode::FlashAttention2] {
                let wl = Workload::new(model.clone(), Phase::DecodeStep { past_len: 256 }, 4, 128);
                let fast = serde_json::to_string(&engine.run(&wl, mode)).unwrap();
                let reference = serde_json::to_string(&engine.run_reference(&wl, mode)).unwrap();
                assert_eq!(fast, reference, "{} decode", model.name);
            }
        }
    }
}
