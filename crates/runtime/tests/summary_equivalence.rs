//! Property test: [`Engine::run_summary`] must equal the reduction of the
//! full trace of the same run, for arbitrary workload configurations.
//!
//! The summary sink observes the identical event stream the trace recorder
//! would (same generic core), so every aggregate — latency, span, first/
//! last timestamps, busy time, event counts — must agree with what
//! [`skip_trace::summarize_trace`] computes after the fact.

use proptest::prelude::*;
use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::{CompileMode, Engine, ExecMode};
use skip_trace::summarize_trace;

fn platforms() -> impl Strategy<Value = Platform> {
    prop::sample::select(vec![
        Platform::intel_h100(),
        Platform::gh200(),
        Platform::mi300a(),
    ])
}

fn models() -> impl Strategy<Value = ModelConfig> {
    prop::sample::select(vec![
        zoo::gpt2(),
        zoo::bert_base_uncased(),
        zoo::llama32_1b(),
        zoo::qwen25_05b(),
    ])
}

fn modes() -> impl Strategy<Value = ExecMode> {
    prop::sample::select(vec![
        ExecMode::Eager,
        ExecMode::FlashAttention2,
        ExecMode::TorchCompile(CompileMode::Default),
        ExecMode::TorchCompile(CompileMode::ReduceOverhead),
        ExecMode::TorchCompile(CompileMode::MaxAutotune),
    ])
}

fn phases() -> impl Strategy<Value = Phase> {
    (0u32..2048).prop_map(|past_len| {
        if past_len == 0 {
            Phase::Prefill
        } else {
            Phase::DecodeStep { past_len }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn summary_equals_trace_reduction(
        platform in platforms(),
        model in models(),
        mode in modes(),
        phase in phases(),
        batch in prop::sample::select(vec![1u32, 4, 16, 64]),
        seq_len in prop::sample::select(vec![16u32, 128, 512]),
    ) {
        let engine = Engine::new(platform);
        let wl = Workload::new(model, phase, batch, seq_len);
        let summary = engine.run_summary(&wl, mode);
        let trace = engine.run(&wl, mode);
        let reduced = summarize_trace(&trace);

        prop_assert_eq!(summary.latency(), reduced.latency());
        prop_assert_eq!(summary.span(), trace.span());
        prop_assert_eq!(summary.first_cpu_begin(), reduced.first_cpu_begin());
        prop_assert_eq!(summary.last_kernel_end(), reduced.last_kernel_end());
        prop_assert_eq!(summary.gpu_busy(), reduced.gpu_busy());
        prop_assert_eq!(summary.cpu_ops(), trace.cpu_ops().len() as u64);
        prop_assert_eq!(summary.launches(), trace.launches().len() as u64);
        prop_assert_eq!(summary.kernels(), trace.kernels().len() as u64);
    }
}
