//! Full autoregressive generation: prefill + decode loop.
//!
//! The paper characterizes the prefill phase (TTFT); its §II-A notes that
//! the decode phase stresses the memory subsystem instead and its §VI
//! plans broader phase coverage. This module extends the engine with a
//! `generate()` call that runs the prefill pass and then `new_tokens`
//! decode steps with a growing KV cache, reporting TTFT, total decode
//! time, and time-per-output-token (TPOT).

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;
use skip_llm::{ModelConfig, Phase, Workload};

use crate::engine::Engine;
use crate::mode::ExecMode;

/// Aggregated latency metrics of one `generate()` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Time-to-first-token: the prefill pass latency.
    pub ttft: SimDuration,
    /// Total time of all decode steps.
    pub decode_time: SimDuration,
    /// Number of tokens generated after the first.
    pub tokens_generated: u32,
}

impl GenerationReport {
    /// Mean time per output token across the decode steps.
    #[must_use]
    pub fn tpot(&self) -> SimDuration {
        if self.tokens_generated == 0 {
            SimDuration::ZERO
        } else {
            self.decode_time / u64::from(self.tokens_generated)
        }
    }

    /// End-to-end latency: prefill plus all decode steps.
    #[must_use]
    pub fn end_to_end(&self) -> SimDuration {
        self.ttft + self.decode_time
    }
}

impl Engine {
    /// Runs prefill over `prompt_len` tokens, then `new_tokens` decode
    /// steps with the KV cache growing each step.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` or `batch` is zero (via [`Workload::new`]).
    #[must_use]
    pub fn generate(
        &self,
        model: &ModelConfig,
        batch: u32,
        prompt_len: u32,
        new_tokens: u32,
        mode: ExecMode,
    ) -> GenerationReport {
        let prefill = Workload::new(model.clone(), Phase::Prefill, batch, prompt_len);
        // Only the latency number is needed here, so the runs go through
        // the summary sink: no trace is materialized per step.
        let ttft = self.run_summary(&prefill, mode).latency();

        let mut decode_time = SimDuration::ZERO;
        for step in 0..new_tokens {
            let wl = Workload::new(
                model.clone(),
                Phase::DecodeStep {
                    past_len: prompt_len + step,
                },
                batch,
                prompt_len,
            );
            decode_time += self.run_summary(&wl, mode).latency();
        }
        GenerationReport {
            ttft,
            decode_time,
            tokens_generated: new_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_hw::Platform;
    use skip_llm::zoo;

    #[test]
    fn generation_aggregates_prefill_and_decode() {
        let engine = Engine::new(Platform::gh200());
        let r = engine.generate(&zoo::gpt2(), 1, 128, 8, ExecMode::Eager);
        assert!(r.ttft > SimDuration::ZERO);
        assert!(r.decode_time > SimDuration::ZERO);
        assert_eq!(r.tokens_generated, 8);
        assert_eq!(r.end_to_end(), r.ttft + r.decode_time);
        // Decode steps are far cheaper than prefill per token batch.
        assert!(r.tpot() < r.ttft);
    }

    #[test]
    fn zero_new_tokens_is_just_prefill() {
        let engine = Engine::new(Platform::intel_h100());
        let r = engine.generate(&zoo::llama32_1b(), 1, 64, 0, ExecMode::Eager);
        assert_eq!(r.decode_time, SimDuration::ZERO);
        assert_eq!(r.tpot(), SimDuration::ZERO);
        assert_eq!(r.end_to_end(), r.ttft);
    }

    #[test]
    fn decode_gpu_work_grows_with_kv_cache() {
        // A step at past_len 2048 moves more KV bytes than one at 64. The
        // *latency* stays flat (decode is launch-bound — the growing GPU
        // work hides in the CPU shadow), but the GPU busy time must grow.
        let engine = Engine::new(Platform::intel_h100());
        let gpu_busy = |past| {
            let wl = Workload::new(
                zoo::llama32_1b(),
                Phase::DecodeStep { past_len: past },
                8,
                64,
            );
            engine
                .run(&wl, ExecMode::Eager)
                .kernels()
                .iter()
                .map(|k| k.duration())
                .sum::<SimDuration>()
        };
        assert!(gpu_busy(2048) > gpu_busy(64));
    }

    #[test]
    fn tpot_is_launch_bound_at_batch_one() {
        // At batch 1 a decode step is almost pure launch tax, so the slow
        // Grace dispatch makes the GH200 the worst TPOT platform — the
        // paper's low-batch story extends to the decode phase.
        let gh = Engine::new(Platform::gh200())
            .generate(&zoo::gpt2(), 1, 64, 4, ExecMode::Eager)
            .tpot();
        let intel = Engine::new(Platform::intel_h100())
            .generate(&zoo::gpt2(), 1, 64, 4, ExecMode::Eager)
            .tpot();
        assert!(gh > intel);
    }
}
