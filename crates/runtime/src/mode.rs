//! Execution modes (paper Fig. 2: eager offload, domain-specific fusion,
//! whole-graph synthesis).

use std::fmt;

use serde::{Deserialize, Serialize};

/// `torch.compile` modes, matching Table I's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompileMode {
    /// Inductor codegen: fused elementwise chains, per-kernel launches.
    Default,
    /// `reduce-overhead`: Default plus CUDA-Graph capture — the whole
    /// forward replays from a single `cudaGraphLaunch`.
    ReduceOverhead,
    /// `max-autotune`: ReduceOverhead plus Triton-autotuned GEMM/fusion
    /// kernels (long compile time, fastest kernels).
    MaxAutotune,
}

impl CompileMode {
    /// All modes in Table I order.
    #[must_use]
    pub fn all() -> [CompileMode; 3] {
        [
            CompileMode::Default,
            CompileMode::ReduceOverhead,
            CompileMode::MaxAutotune,
        ]
    }

    /// The mode string as passed to `torch.compile(mode=…)`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CompileMode::Default => "default",
            CompileMode::ReduceOverhead => "reduce-overhead",
            CompileMode::MaxAutotune => "max-autotune",
        }
    }

    /// Whether this mode replays the forward from a captured CUDA graph.
    #[must_use]
    pub fn uses_cuda_graphs(self) -> bool {
        matches!(self, CompileMode::ReduceOverhead | CompileMode::MaxAutotune)
    }

    /// Post-roofline duration multiplier for GEMM-class kernels
    /// (autotuning finds faster tilings).
    #[must_use]
    pub fn gemm_duration_factor(self) -> f64 {
        match self {
            CompileMode::MaxAutotune => 0.88,
            _ => 1.0,
        }
    }
}

/// How a workload is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Kernel-at-a-time eager execution — the paper's baseline.
    Eager,
    /// Eager execution with the FlashAttention-2 fused attention kernel.
    FlashAttention2,
    /// `torch.compile` graph execution.
    TorchCompile(CompileMode),
}

impl ExecMode {
    /// Short label used in trace metadata and figure legends.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            ExecMode::Eager => "eager".into(),
            ExecMode::FlashAttention2 => "flash_attention_2".into(),
            ExecMode::TorchCompile(m) => format!("torch_compile[{}]", m.label()),
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_torch_strings() {
        assert_eq!(CompileMode::Default.label(), "default");
        assert_eq!(CompileMode::ReduceOverhead.label(), "reduce-overhead");
        assert_eq!(CompileMode::MaxAutotune.label(), "max-autotune");
    }

    #[test]
    fn cuda_graph_usage() {
        assert!(!CompileMode::Default.uses_cuda_graphs());
        assert!(CompileMode::ReduceOverhead.uses_cuda_graphs());
        assert!(CompileMode::MaxAutotune.uses_cuda_graphs());
    }

    #[test]
    fn only_max_autotune_speeds_up_gemms() {
        assert_eq!(CompileMode::Default.gemm_duration_factor(), 1.0);
        assert!(CompileMode::MaxAutotune.gemm_duration_factor() < 1.0);
    }

    #[test]
    fn exec_mode_display() {
        assert_eq!(ExecMode::Eager.to_string(), "eager");
        assert_eq!(
            ExecMode::TorchCompile(CompileMode::MaxAutotune).to_string(),
            "torch_compile[max-autotune]"
        );
    }
}
