//! The execution engine: walks operator graphs on the platform model and
//! emits CUPTI-style traces.

use std::collections::HashMap;

use skip_des::{FifoResource, IdAllocator, SimDuration, SimTime};
use skip_hw::{KernelClass, Platform};
use skip_llm::{AttentionImpl, GraphOptions, KernelSpec, OpNode, Workload};
use skip_trace::{
    CorrelationId, CpuOpEvent, KernelEvent, NameId, OpId, RuntimeLaunchEvent, StreamId, ThreadId,
    Trace, TraceMeta,
};

use crate::compiled::{
    self, COMPILED_DISPATCH_NS, CUDAGRAPH_ENTRY_NS, GUARD_EVAL_NS, REPLAY_NODE_NS,
};
use crate::mode::{CompileMode, ExecMode};

/// Executes workloads on one platform.
///
/// See the crate docs for the timing semantics. An `Engine` is cheap to
/// construct and stateless across runs; every [`Engine::run`] produces an
/// independent trace.
#[derive(Debug, Clone)]
pub struct Engine {
    platform: Platform,
}

impl Engine {
    /// Creates an engine for `platform`.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Engine { platform }
    }

    /// The platform this engine simulates.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs one forward pass of `workload` under `mode`, returning the
    /// profiled trace. Deterministic: same inputs, same trace.
    #[must_use]
    pub fn run(&self, workload: &Workload, mode: ExecMode) -> Trace {
        let meta = TraceMeta {
            model: workload.model.name.clone(),
            platform: self.platform.name.clone(),
            exec_mode: mode.label(),
            phase: workload.phase.label().into(),
            batch_size: workload.batch_size,
            seq_len: workload.seq_len,
        };
        match mode {
            ExecMode::Eager => self.run_tree(workload, GraphOptions::default(), meta),
            ExecMode::FlashAttention2 => self.run_tree(
                workload,
                GraphOptions {
                    attention: AttentionImpl::FlashAttention2,
                },
                meta,
            ),
            ExecMode::TorchCompile(cm) => self.run_compiled(workload, cm, meta),
        }
    }

    /// Replays an explicit kernel stream eagerly: one `Simple`-complexity
    /// dispatch operator plus one `cudaLaunchKernel` per kernel.
    ///
    /// This is the measurement backend for *applied* proximity-score
    /// fusion (paper §VI future work): replay the eager stream and the
    /// fusion-transformed stream and compare latencies — the measured
    /// counterpart of the idealized Eq. 8 speedup.
    #[must_use]
    pub fn replay_stream(&self, kernels: &[KernelSpec], meta: TraceMeta) -> Trace {
        let mut exec = Exec::new(&self.platform, meta);
        // The `replay::<kernel>` label is built (and interned) once per
        // *distinct* kernel name, not once per launch.
        let mut replay_names: HashMap<&str, NameId> = HashMap::new();
        for spec in kernels {
            let name = match replay_names.get(spec.name.as_str()) {
                Some(&id) => id,
                None => {
                    let id = exec.trace.intern(&format!("replay::{}", spec.name));
                    replay_names.insert(&spec.name, id);
                    id
                }
            };
            let begin = exec.cpu_now;
            let id = OpId::new(exec.op_ids.next_id());
            exec.cpu_now += self.platform.cpu.op_cost(skip_hw::OpComplexity::Simple);
            exec.launch_kernel(spec, 1.0);
            exec.trace.push_cpu_op(CpuOpEvent {
                id,
                name,
                thread: ThreadId::MAIN,
                begin,
                end: exec.cpu_now,
            });
        }
        exec.finish()
    }

    /// Eager-style execution of an arbitrary operator graph: the entry
    /// point for workloads beyond the transformer zoo (recommendation
    /// models, GNNs — the paper's §VI scope extension). `input_bytes` is
    /// the host→device input copy preceding the forward pass.
    #[must_use]
    pub fn run_graph(
        &self,
        graph: &skip_llm::OperatorGraph,
        input_bytes: u64,
        meta: TraceMeta,
    ) -> Trace {
        let mut exec = Exec::new(&self.platform, meta);
        exec.h2d_input(input_bytes);
        for op in graph.ops() {
            exec.exec_op(op);
        }
        exec.finish()
    }

    /// Eager-style execution of the operator tree.
    fn run_tree(&self, workload: &Workload, opts: GraphOptions, meta: TraceMeta) -> Trace {
        let graph = workload.graph_with(opts);
        self.run_graph(&graph, workload.input_bytes(), meta)
    }

    /// `torch.compile` execution: guard evaluation, then either per-kernel
    /// Inductor dispatch (Default) or a single CUDA-graph replay
    /// (ReduceOverhead / MaxAutotune) of the fused kernel stream.
    fn run_compiled(&self, workload: &Workload, cm: CompileMode, meta: TraceMeta) -> Trace {
        let graph = workload.graph();
        let stream = compiled::inductor_stream(&graph, cm);
        let mut exec = Exec::new(&self.platform, meta);
        exec.h2d_input(workload.input_bytes());

        // Per-forward entry cost: full Dynamo guard evaluation for the
        // Inductor wrapper; a lighter cached re-entry for cudagraph replay.
        let entry = if cm.uses_cuda_graphs() {
            CUDAGRAPH_ENTRY_NS
        } else {
            GUARD_EVAL_NS
        };
        let guard_eval = exec.trace.intern("torch::_dynamo::guard_eval");
        exec.cpu_op(guard_eval, SimDuration::from_nanos_f64(entry));

        let gemm_factor = cm.gemm_duration_factor();
        if cm.uses_cuda_graphs() {
            // One cudaGraphLaunch; every captured node becomes available the
            // moment the graph reaches the device.
            let graph_launch = exec.trace.intern("cudaGraphLaunch");
            let launch_begin = exec.cpu_now;
            exec.cpu_now += self.platform.cpu.launch_call_cost();
            let launch_end = exec.cpu_now;
            let arrival = launch_begin + self.platform.launch_overhead();
            for spec in &stream {
                let corr = CorrelationId::new(exec.corr.next_id());
                exec.trace.push_launch(RuntimeLaunchEvent {
                    name: graph_launch,
                    thread: ThreadId::MAIN,
                    begin: launch_begin,
                    end: launch_end,
                    correlation: corr,
                });
                let name = exec.trace.intern(&spec.name);
                let dur = exec.kernel_duration(spec, gemm_factor)
                    + SimDuration::from_nanos_f64(REPLAY_NODE_NS);
                let busy = exec.stream.admit(arrival, dur);
                exec.trace.push_kernel(KernelEvent {
                    name,
                    stream: StreamId::DEFAULT,
                    begin: busy.start,
                    end: busy.end,
                    correlation: corr,
                });
            }
        } else {
            // Default mode: compiled wrapper dispatches each (fused) kernel
            // with a much cheaper CPU cost than eager ATen dispatch.
            let inductor_call = exec.trace.intern("inductor::call");
            for spec in &stream {
                exec.cpu_op(
                    inductor_call,
                    SimDuration::from_nanos_f64(COMPILED_DISPATCH_NS),
                );
                exec.launch_kernel(spec, gemm_factor);
            }
        }
        exec.finish()
    }
}

/// Mutable execution state shared by the run modes.
struct Exec<'a> {
    platform: &'a Platform,
    trace: Trace,
    stream: FifoResource,
    cpu_now: SimTime,
    corr: IdAllocator,
    op_ids: IdAllocator,
    /// Runtime API names interned once per run — the hot launch path never
    /// touches the intern hash map, let alone allocates.
    n_launch: NameId,
    n_memcpy: NameId,
    n_aten_to: NameId,
}

impl<'a> Exec<'a> {
    fn new(platform: &'a Platform, meta: TraceMeta) -> Self {
        let mut trace = Trace::new(meta);
        let n_launch = trace.intern("cudaLaunchKernel");
        let n_memcpy = trace.intern("cudaMemcpyAsync");
        let n_aten_to = trace.intern("aten::to");
        Exec {
            platform,
            trace,
            stream: FifoResource::new(),
            cpu_now: SimTime::ZERO,
            corr: IdAllocator::starting_at(1),
            op_ids: IdAllocator::new(),
            n_launch,
            n_memcpy,
            n_aten_to,
        }
    }

    /// Records the host→device input copy (`aten::to` + `cudaMemcpyAsync`).
    fn h2d_input(&mut self, bytes: u64) {
        let copy = self.platform.h2d_transfer(bytes);
        if copy.is_zero() {
            return; // tightly-coupled unified memory: no copy
        }
        let begin = self.cpu_now;
        let corr = CorrelationId::new(self.corr.next_id());
        self.trace.push_launch(RuntimeLaunchEvent {
            name: self.n_memcpy,
            thread: ThreadId::MAIN,
            begin,
            end: begin + copy,
            correlation: corr,
        });
        self.cpu_now += copy;
        self.trace.push_cpu_op(CpuOpEvent {
            id: OpId::new(self.op_ids.next_id()),
            name: self.n_aten_to,
            thread: ThreadId::MAIN,
            begin,
            end: self.cpu_now,
        });
    }

    /// Records a plain CPU operator of the given duration.
    fn cpu_op(&mut self, name: NameId, dur: SimDuration) {
        let begin = self.cpu_now;
        self.cpu_now += dur;
        self.trace.push_cpu_op(CpuOpEvent {
            id: OpId::new(self.op_ids.next_id()),
            name,
            thread: ThreadId::MAIN,
            begin,
            end: self.cpu_now,
        });
    }

    /// Recursively executes one operator node: pay its framework cost,
    /// run children, launch its kernels.
    fn exec_op(&mut self, op: &OpNode) {
        let begin = self.cpu_now;
        let id = OpId::new(self.op_ids.next_id());
        let name = self.trace.intern(&op.name);
        self.cpu_now += self.platform.cpu.op_cost(op.complexity);
        for child in &op.children {
            self.exec_op(child);
        }
        for kernel in &op.kernels {
            self.launch_kernel(kernel, 1.0);
        }
        self.trace.push_cpu_op(CpuOpEvent {
            id,
            name,
            thread: ThreadId::MAIN,
            begin,
            end: self.cpu_now,
        });
    }

    /// Launches one kernel: `cudaLaunchKernel` on the CPU, delivery across
    /// the interconnect, FIFO admission on the stream.
    fn launch_kernel(&mut self, spec: &KernelSpec, gemm_factor: f64) {
        let launch_begin = self.cpu_now;
        self.cpu_now += self.platform.cpu.launch_call_cost();
        let launch_end = self.cpu_now;
        let corr = CorrelationId::new(self.corr.next_id());
        self.trace.push_launch(RuntimeLaunchEvent {
            name: self.n_launch,
            thread: ThreadId::MAIN,
            begin: launch_begin,
            end: launch_end,
            correlation: corr,
        });
        // Kernel names repeat across layers, so this is a hash hit (no
        // allocation) for all but the first launch of each distinct shape.
        let name = self.trace.intern(&spec.name);
        // The kernel reaches the head of the stream one full launch
        // overhead after the launch call started (CPU call + wire/driver).
        let arrival = launch_begin + self.platform.launch_overhead();
        let dur = self.kernel_duration(spec, gemm_factor);
        let busy = self.stream.admit(arrival, dur);
        self.trace.push_kernel(KernelEvent {
            name,
            stream: StreamId::DEFAULT,
            begin: busy.start,
            end: busy.end,
            correlation: corr,
        });
    }

    fn kernel_duration(&self, spec: &KernelSpec, gemm_factor: f64) -> SimDuration {
        let base = self.platform.gpu.kernel_duration(&spec.work);
        if spec.work.class == KernelClass::Gemm && gemm_factor != 1.0 {
            SimDuration::from_nanos_f64(base.as_nanos_f64() * gemm_factor)
        } else {
            base
        }
    }

    fn finish(self) -> Trace {
        debug_assert!(self.trace.validate().is_ok());
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::{zoo, Phase};

    fn wl(batch: u32) -> Workload {
        Workload::new(zoo::gpt2(), Phase::Prefill, batch, 512)
    }

    #[test]
    fn eager_trace_is_valid_and_complete() {
        let engine = Engine::new(Platform::intel_h100());
        let t = engine.run(&wl(1), ExecMode::Eager);
        t.validate().unwrap();
        assert_eq!(t.kernels().len(), 402);
        // Every kernel has a launch; there is one extra launch (the memcpy).
        assert_eq!(t.launches().len(), 403);
        assert_eq!(t.meta().exec_mode, "eager");
    }

    #[test]
    fn execution_is_deterministic() {
        let engine = Engine::new(Platform::gh200());
        let a = engine.run(&wl(4), ExecMode::Eager);
        let b = engine.run(&wl(4), ExecMode::Eager);
        assert_eq!(a, b);
    }

    #[test]
    fn small_batch_kernels_start_one_launch_overhead_after_call() {
        // CPU-bound region: no queuing, so t_l == platform launch overhead.
        let platform = Platform::intel_h100();
        let engine = Engine::new(platform.clone());
        let t = engine.run(&wl(1), ExecMode::Eager);
        let overhead = platform.launch_overhead();
        // Skip the memcpy launch (no kernel); inspect the first real kernel.
        let k = &t.kernels()[0];
        let l = t
            .launches()
            .iter()
            .find(|l| l.correlation == k.correlation)
            .unwrap();
        assert_eq!(k.begin.duration_since(l.begin), overhead);
    }

    #[test]
    fn large_batch_kernels_queue() {
        // GPU-bound region: kernels start much later than launch+overhead.
        let platform = Platform::intel_h100();
        let engine = Engine::new(platform.clone());
        let t = engine.run(&wl(64), ExecMode::Eager);
        let overhead = platform.launch_overhead();
        let last = t.kernels().last().unwrap();
        let l = t
            .launches()
            .iter()
            .find(|l| l.correlation == last.correlation)
            .unwrap();
        assert!(last.begin.duration_since(l.begin) > overhead * 10);
    }

    #[test]
    fn flash_attention_launches_fewer_kernels() {
        let engine = Engine::new(Platform::intel_h100());
        let eager = engine.run(&wl(8), ExecMode::Eager);
        let flash = engine.run(&wl(8), ExecMode::FlashAttention2);
        assert!(flash.kernels().len() < eager.kernels().len());
        flash.validate().unwrap();
    }

    #[test]
    fn cuda_graph_mode_has_single_launch_timestamp() {
        let engine = Engine::new(Platform::intel_h100());
        let t = engine.run(&wl(1), ExecMode::TorchCompile(CompileMode::ReduceOverhead));
        t.validate().unwrap();
        let graph_launches: Vec<_> = t
            .launches()
            .iter()
            .filter(|l| t.name(l.name) == "cudaGraphLaunch")
            .collect();
        assert!(!graph_launches.is_empty());
        // All replayed nodes share the same launch-call window.
        let first = graph_launches[0];
        assert!(graph_launches
            .iter()
            .all(|l| l.begin == first.begin && l.end == first.end));
    }

    #[test]
    fn compiled_modes_beat_eager_latency_at_batch_1() {
        let engine = Engine::new(Platform::intel_h100());
        let span = |t: &Trace| t.span();
        let eager = span(&engine.run(&wl(1), ExecMode::Eager));
        for cm in CompileMode::all() {
            let t = engine.run(&wl(1), ExecMode::TorchCompile(cm));
            assert!(
                span(&t) < eager,
                "{}: {} !< {}",
                cm.label(),
                span(&t),
                eager
            );
        }
    }

    #[test]
    fn tight_coupling_skips_input_copy() {
        let engine = Engine::new(Platform::mi300a());
        let t = engine.run(&wl(1), ExecMode::Eager);
        assert!(t
            .launches()
            .iter()
            .all(|l| t.name(l.name) != "cudaMemcpyAsync"));
        let lc = Engine::new(Platform::intel_h100()).run(&wl(1), ExecMode::Eager);
        assert!(lc
            .launches()
            .iter()
            .any(|l| lc.name(l.name) == "cudaMemcpyAsync"));
    }

    #[test]
    fn trace_meta_records_run_configuration() {
        let engine = Engine::new(Platform::gh200());
        let w = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 16, 512);
        let t = engine.run(&w, ExecMode::Eager);
        let m = t.meta();
        assert_eq!(m.model, "bert-base-uncased");
        assert_eq!(m.platform, "gh200");
        assert_eq!(m.batch_size, 16);
        assert_eq!(m.seq_len, 512);
        assert_eq!(m.phase, "prefill");
    }
}
