//! The execution engine: walks operator graphs on the platform model and
//! emits CUPTI-style traces.
//!
//! The execution core ([`Exec`]) is generic over an event sink: the same
//! simulation drives the full [`Trace`] recorder and the zero-allocation
//! [`RunSummary`] aggregator ([`Engine::run_summary`]), so consumers that
//! only need a latency number skip event materialization entirely.
//!
//! On top of the sink core sits a periodic-layer fast path for eager-style
//! execution: an operator list whose tail repeats (L identical transformer
//! layer blocks) is simulated block by block only until the per-kernel
//! timing deltas of two successive blocks repeat exactly, after which the
//! remaining blocks are *replicated* by constant time offsets. The
//! replication is exact for the max-plus FIFO recurrence once the timing is
//! periodic — see [`periodic_shift`] for the case analysis — and the engine
//! falls back to full simulation whenever no period is detected.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use skip_des::{FifoResource, IdAllocator, SimDuration, SimTime};
use skip_hw::{KernelClass, Platform};
use skip_llm::{AttentionImpl, GraphOptions, KernelSpec, OpNode, Workload};
use skip_trace::{
    CorrelationId, CpuOpEvent, EventSink, KernelClassTag, KernelEvent, NameId, OpId, ReplicaBlock,
    RunSummary, RuntimeLaunchEvent, StreamId, ThreadId, Trace, TraceMeta,
};

use crate::compiled::{
    self, COMPILED_DISPATCH_NS, CUDAGRAPH_ENTRY_NS, GUARD_EVAL_NS, REPLAY_NODE_NS,
};
use crate::mode::{CompileMode, ExecMode};
use crate::schedule::{self, Schedule, Step};

/// Maps the hardware kernel taxonomy onto [`RunSummary`] class slots.
///
/// The trace crate cannot depend on the platform model, so summaries
/// accumulate per-class busy time under opaque tags; this is the producer
/// side of that mapping. Future taxonomy additions land in the last
/// ("other") slot rather than panicking.
#[must_use]
pub fn kernel_class_tag(class: KernelClass) -> KernelClassTag {
    KernelClassTag::new(match class {
        KernelClass::Gemm => 0,
        KernelClass::Elementwise => 1,
        KernelClass::Reduction => 2,
        KernelClass::Gather => 3,
        KernelClass::Memory => 4,
        KernelClass::FusedAttention => 5,
        KernelClass::FusedChain => 6,
        KernelClass::Null => 7,
        _ => (KernelClassTag::SLOTS - 1) as u8,
    })
}

/// Executes workloads on one platform.
///
/// See the crate docs for the timing semantics. An `Engine` is cheap to
/// construct and stateless across runs; every [`Engine::run`] produces an
/// independent trace.
#[derive(Debug, Clone)]
pub struct Engine {
    platform: Platform,
    /// Canonical platform serialization, computed lazily on the first
    /// schedule lookup — the platform half of the schedule-table key.
    /// Shared (`Arc`) so cloning an engine keeps the cached signature.
    platform_sig: Arc<OnceLock<Arc<str>>>,
}

impl Engine {
    /// Creates an engine for `platform`.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Engine {
            platform,
            platform_sig: Arc::new(OnceLock::new()),
        }
    }

    /// The canonical serialization of this engine's platform. Platforms
    /// are structural configuration data, so equal signatures mean equal
    /// timing models.
    fn platform_sig(&self) -> Arc<str> {
        Arc::clone(self.platform_sig.get_or_init(|| {
            serde_json::to_string(&self.platform)
                .expect("platform serializes")
                .into()
        }))
    }

    /// The platform this engine simulates.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs one forward pass of `workload` under `mode`, returning the
    /// profiled trace. Deterministic: same inputs, same trace.
    #[must_use]
    pub fn run(&self, workload: &Workload, mode: ExecMode) -> Trace {
        let sink = Trace::new(self.meta_for(workload, mode));
        checked(self.run_sink(workload, mode, sink, true))
    }

    /// [`Engine::run`] with the periodic-layer fast path disabled: every
    /// operator is simulated individually. This is the differential-testing
    /// reference — [`Engine::run`] must produce a byte-identical trace.
    #[must_use]
    pub fn run_reference(&self, workload: &Workload, mode: ExecMode) -> Trace {
        let sink = Trace::new(self.meta_for(workload, mode));
        checked(self.run_sink(workload, mode, sink, false))
    }

    /// Runs one forward pass recording only aggregates: no events are
    /// stored, interned or allocated. The summary's reductions (latency,
    /// span, busy times, counts) are identical to what the full trace of
    /// the same run would reduce to.
    #[must_use]
    pub fn run_summary(&self, workload: &Workload, mode: ExecMode) -> RunSummary {
        self.run_sink(workload, mode, RunSummary::new(), true)
    }

    fn meta_for(&self, workload: &Workload, mode: ExecMode) -> TraceMeta {
        TraceMeta {
            model: workload.model.name.clone(),
            platform: self.platform.name.clone(),
            exec_mode: mode.label(),
            phase: workload.phase.label().into(),
            batch_size: workload.batch_size,
            seq_len: workload.seq_len,
        }
    }

    fn run_sink<S: EventSink>(
        &self,
        workload: &Workload,
        mode: ExecMode,
        sink: S,
        fast: bool,
    ) -> S {
        match mode {
            ExecMode::Eager => self.run_tree(workload, GraphOptions::default(), sink, fast),
            ExecMode::FlashAttention2 => self.run_tree(
                workload,
                GraphOptions {
                    attention: AttentionImpl::FlashAttention2,
                },
                sink,
                fast,
            ),
            ExecMode::TorchCompile(cm) => self.run_compiled(workload, cm, sink),
        }
    }

    /// Replays an explicit kernel stream eagerly: one `Simple`-complexity
    /// dispatch operator plus one `cudaLaunchKernel` per kernel.
    ///
    /// This is the measurement backend for *applied* proximity-score
    /// fusion (paper §VI future work): replay the eager stream and the
    /// fusion-transformed stream and compare latencies — the measured
    /// counterpart of the idealized Eq. 8 speedup.
    #[must_use]
    pub fn replay_stream(&self, kernels: &[KernelSpec], meta: TraceMeta) -> Trace {
        let mut exec = Exec::new(&self.platform, Trace::new(meta));
        // The `replay::<kernel>` label is built (and interned) once per
        // *distinct* kernel name, not once per launch.
        let mut replay_names: HashMap<&str, NameId> = HashMap::new();
        for spec in kernels {
            let name = match replay_names.get(spec.name.as_str()) {
                Some(&id) => id,
                None => {
                    let id = exec.sink.intern(&format!("replay::{}", spec.name));
                    replay_names.insert(&spec.name, id);
                    id
                }
            };
            let begin = exec.cpu_now;
            let id = OpId::new(exec.op_ids.next_id());
            exec.cpu_now += self.platform.cpu.op_cost(skip_hw::OpComplexity::Simple);
            exec.launch_kernel(spec, 1.0);
            exec.emit_cpu(CpuOpEvent {
                id,
                name,
                thread: ThreadId::MAIN,
                begin,
                end: exec.cpu_now,
            });
        }
        checked(exec.into_sink())
    }

    /// Eager-style execution of an arbitrary operator graph: the entry
    /// point for workloads beyond the transformer zoo (recommendation
    /// models, GNNs — the paper's §VI scope extension). `input_bytes` is
    /// the host→device input copy preceding the forward pass.
    #[must_use]
    pub fn run_graph(
        &self,
        graph: &skip_llm::OperatorGraph,
        input_bytes: u64,
        meta: TraceMeta,
    ) -> Trace {
        checked(self.run_graph_sink(graph, input_bytes, Trace::new(meta), true))
    }

    /// [`Engine::run_graph`] with the periodic-layer fast path disabled —
    /// the differential-testing reference for graph-level workloads.
    #[must_use]
    pub fn run_graph_reference(
        &self,
        graph: &skip_llm::OperatorGraph,
        input_bytes: u64,
        meta: TraceMeta,
    ) -> Trace {
        checked(self.run_graph_sink(graph, input_bytes, Trace::new(meta), false))
    }

    fn run_graph_sink<S: EventSink>(
        &self,
        graph: &skip_llm::OperatorGraph,
        input_bytes: u64,
        sink: S,
        fast: bool,
    ) -> S {
        let mut exec = Exec::new(&self.platform, sink);
        exec.h2d_input(input_bytes);
        exec.exec_ops(graph.ops(), fast);
        exec.into_sink()
    }

    /// Eager-style execution of the operator tree.
    ///
    /// The fast path replays the pre-priced [`Schedule`] compiled once per
    /// (shared graph, platform) shape signature; the reference path
    /// (`fast = false`) walks the operator tree per run. Both produce
    /// byte-identical traces — the schedule performs the same arithmetic in
    /// the same order.
    fn run_tree<S: EventSink>(
        &self,
        workload: &Workload,
        opts: GraphOptions,
        sink: S,
        fast: bool,
    ) -> S {
        // Shared-cache build: batch sweeps and serving replicas re-run the
        // same workload shapes constantly, and construction was more than
        // half the cost of a summary-sink run.
        let graph = workload.graph_shared(opts);
        let mut exec = Exec::new(&self.platform, sink);
        exec.h2d_input(workload.input_bytes());
        if fast {
            let sched = schedule::schedule_for(&graph, &self.platform, &self.platform_sig());
            exec.exec_schedule(&sched);
        } else {
            exec.exec_ops(graph.ops(), false);
        }
        exec.into_sink()
    }

    /// `torch.compile` execution: guard evaluation, then either per-kernel
    /// Inductor dispatch (Default) or a single CUDA-graph replay
    /// (ReduceOverhead / MaxAutotune) of the fused kernel stream.
    fn run_compiled<S: EventSink>(&self, workload: &Workload, cm: CompileMode, sink: S) -> S {
        let graph = workload.graph_shared(GraphOptions::default());
        let stream = compiled::inductor_stream(&graph, cm);
        let mut exec = Exec::new(&self.platform, sink);
        exec.h2d_input(workload.input_bytes());

        // Per-forward entry cost: full Dynamo guard evaluation for the
        // Inductor wrapper; a lighter cached re-entry for cudagraph replay.
        let entry = if cm.uses_cuda_graphs() {
            CUDAGRAPH_ENTRY_NS
        } else {
            GUARD_EVAL_NS
        };
        let guard_eval = exec.sink.intern_name("torch::_dynamo::guard_eval");
        exec.cpu_op(guard_eval, SimDuration::from_nanos_f64(entry));

        let gemm_factor = cm.gemm_duration_factor();
        if cm.uses_cuda_graphs() {
            // One cudaGraphLaunch; every captured node becomes available the
            // moment the graph reaches the device.
            let graph_launch = exec.sink.intern_name("cudaGraphLaunch");
            let launch_begin = exec.cpu_now;
            exec.cpu_now += self.platform.cpu.launch_call_cost();
            let launch_end = exec.cpu_now;
            let arrival = launch_begin + self.platform.launch_overhead();
            for spec in &stream {
                let corr = CorrelationId::new(exec.corr.next_id());
                exec.emit_launch(RuntimeLaunchEvent {
                    name: graph_launch,
                    thread: ThreadId::MAIN,
                    begin: launch_begin,
                    end: launch_end,
                    correlation: corr,
                });
                let name = exec.sink.intern_name(&spec.name);
                let dur = exec.kernel_duration(spec, gemm_factor)
                    + SimDuration::from_nanos_f64(REPLAY_NODE_NS);
                let busy = exec.stream.admit(arrival, dur);
                exec.emit_kernel(
                    KernelEvent {
                        name,
                        stream: StreamId::DEFAULT,
                        begin: busy.start,
                        end: busy.end,
                        correlation: corr,
                    },
                    kernel_class_tag(spec.work.class),
                    arrival,
                );
            }
        } else {
            // Default mode: compiled wrapper dispatches each (fused) kernel
            // with a much cheaper CPU cost than eager ATen dispatch.
            let inductor_call = exec.sink.intern_name("inductor::call");
            for spec in &stream {
                exec.cpu_op(
                    inductor_call,
                    SimDuration::from_nanos_f64(COMPILED_DISPATCH_NS),
                );
                exec.launch_kernel(spec, gemm_factor);
            }
        }
        exec.into_sink()
    }
}

/// Debug-asserts the trace invariants before handing the trace out.
fn checked(trace: Trace) -> Trace {
    debug_assert!(trace.validate().is_ok());
    trace
}

/// A kernel recorded during a periodic-block probe: the emitted event plus
/// the producer-side facts replication needs (class tag for summary sinks,
/// stream arrival time for the periodicity fingerprint).
struct ProbedKernel {
    ev: KernelEvent,
    tag: KernelClassTag,
    arrival: SimTime,
}

/// Everything one simulated block of a periodic region produced, recorded
/// so the remaining blocks can be replicated from it by constant offsets.
struct BlockLog {
    entry_cpu: SimTime,
    entry_free: SimTime,
    exit_cpu: SimTime,
    exit_free: SimTime,
    op_base: u64,
    corr_base: u64,
    cpu: Vec<CpuOpEvent>,
    launches: Vec<RuntimeLaunchEvent>,
    kernels: Vec<ProbedKernel>,
}

/// Per-block time offsets replication applies: CPU-side events shift by
/// `cpu` per block, kernel events by `kernel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shift {
    cpu: SimDuration,
    kernel: SimDuration,
}

/// A detected periodic region of a top-level operator list: `blocks`
/// consecutive, structurally identical runs of `period` operators starting
/// at index `start`.
struct Periodic {
    start: usize,
    period: usize,
    blocks: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// Shallow structural signature of a top-level operator: its own name,
/// complexity and child/kernel counts, with no subtree traversal. Cheap
/// enough to compute for every op on every run; collisions and
/// subtree-only differences are caught by the deep-equality verification
/// in [`detect_periodic`] before any replication happens.
fn signature(op: &OpNode) -> u64 {
    let mut h = fnv_bytes(FNV_OFFSET, op.name.as_bytes());
    h = fnv_bytes(h, &[0xff, op.complexity as u8]);
    h = fnv_u64(h, op.children.len() as u64);
    fnv_u64(h, op.kernels.len() as u64)
}

/// Finds a periodic region of `ops` worth replicating, in O(n).
///
/// The candidate period is the most common distance between consecutive
/// occurrences of the same shallow [`signature`] — in a transformer graph,
/// the layer stride, since most ops occur once per layer. One scan then
/// finds the longest run of signature matches at that period; a run of
/// three or more full blocks is verified (and possibly shrunk) by deep
/// operator equality, so a signature coincidence can cost a failed
/// verification but never corrupt a trace. The detector is a heuristic:
/// anything it misses simply falls back to full per-operator simulation.
fn detect_periodic(ops: &[OpNode]) -> Option<Periodic> {
    let n = ops.len();
    if n < 6 {
        return None;
    }
    let mut sigs = Vec::with_capacity(n);
    for op in ops {
        sigs.push(signature(op));
    }
    // Mode of the consecutive-occurrence distances, capped at n/3 (three
    // blocks must fit). Ties prefer the smaller distance: shorter periods
    // mean more blocks, hence more simulation skipped.
    let mut last: HashMap<u64, usize> = HashMap::with_capacity(n);
    let mut dist_count = vec![0u32; n / 3 + 1];
    for (i, &s) in sigs.iter().enumerate() {
        if let Some(j) = last.insert(s, i) {
            let d = i - j;
            if let Some(c) = dist_count.get_mut(d) {
                *c += 1;
            }
        }
    }
    let period = (1..dist_count.len()).reduce(|best, d| {
        if dist_count[d] > dist_count[best] {
            d
        } else {
            best
        }
    })?;
    if dist_count[period] == 0 {
        return None;
    }
    // Longest run of sig[i] == sig[i + period]: a run covering
    // [start, start + run + period) holds run/period + 1 full blocks.
    let (mut best_start, mut best_run) = (0usize, 0usize);
    let mut run_start = 0;
    for i in 0..n - period {
        if sigs[i] == sigs[i + period] {
            if i + 1 - run_start > best_run {
                best_start = run_start;
                best_run = i + 1 - run_start;
            }
        } else {
            run_start = i + 1;
        }
    }
    let cand = Periodic {
        start: best_start,
        period,
        blocks: best_run / period + 1,
    };
    if cand.blocks < 3 {
        return None;
    }
    // Verify with deep equality, shrinking to the verified prefix.
    let first = &ops[cand.start..cand.start + cand.period];
    let mut blocks = 1;
    while blocks < cand.blocks {
        let s = cand.start + blocks * cand.period;
        if ops[s..s + cand.period] == *first {
            blocks += 1;
        } else {
            break;
        }
    }
    (blocks >= 3).then_some(Periodic { blocks, ..cand })
}

/// Decides whether block `b` (simulated immediately after block `a` of the
/// same periodic region) proves the timing recurrence periodic, and if so
/// with which per-block shifts. Replication from `b` is *exact* in three
/// cases:
///
/// * **Uniform** — every per-kernel (arrival→start, duration) pair of `b`
///   matches `a` exactly. Arrivals are CPU-driven and shift by the block
///   CPU time `Δc`, so matching gaps mean every kernel (and the stream
///   free point) shifted by exactly `Δc` too: the whole simulation state
///   entering the next block is the state entering `b` shifted by `Δc`,
///   and the max-plus recurrence is shift-invariant.
/// * **Saturated** — both blocks' kernels are back-to-back from the
///   stream's entry free point (zero idle), and the per-block kernel sum
///   `Δk` is at least `Δc`. Then every future start resolves to `prev
///   end` (the arrival margin only grows, since kernels shift by `Δk ≥
///   Δc` while arrivals shift by `Δc`), which replication reproduces by
///   shifting kernels `Δk` per block.
/// * **Kernel-free** — a block with no kernels never touches the stream;
///   its CPU events replicate at `Δc` and the free point stays put.
///
/// Any other pattern (the transition region between the paper's CPU-bound
/// and GPU-bound regimes) returns `None` and the caller keeps simulating.
fn periodic_shift(a: &BlockLog, b: &BlockLog) -> Option<Shift> {
    let dc = b.entry_cpu.duration_since(a.entry_cpu);
    debug_assert_eq!(b.exit_cpu.duration_since(b.entry_cpu), dc);
    debug_assert_eq!(a.cpu.len(), b.cpu.len());
    debug_assert_eq!(a.kernels.len(), b.kernels.len());
    if a.kernels.len() != b.kernels.len() {
        return None;
    }
    if b.kernels.is_empty() {
        return Some(Shift {
            cpu: dc,
            kernel: SimDuration::ZERO,
        });
    }
    let durations_match =
        a.kernels.iter().zip(&b.kernels).all(|(x, y)| {
            x.ev.end.duration_since(x.ev.begin) == y.ev.end.duration_since(y.ev.begin)
        });
    if !durations_match {
        return None;
    }
    let gaps_match =
        a.kernels.iter().zip(&b.kernels).all(|(x, y)| {
            x.ev.begin.duration_since(x.arrival) == y.ev.begin.duration_since(y.arrival)
        });
    if gaps_match {
        debug_assert_eq!(b.exit_free.duration_since(b.entry_free), dc);
        return Some(Shift {
            cpu: dc,
            kernel: dc,
        });
    }
    let saturated = |l: &BlockLog| {
        l.kernels[0].ev.begin == l.entry_free
            && l.kernels.windows(2).all(|w| w[1].ev.begin == w[0].ev.end)
    };
    if saturated(a) && saturated(b) {
        let dk = b.exit_free.duration_since(b.entry_free);
        debug_assert_eq!(dk, a.exit_free.duration_since(a.entry_free));
        if dk >= dc {
            return Some(Shift {
                cpu: dc,
                kernel: dk,
            });
        }
    }
    None
}

/// `d × m`, exact in integer nanoseconds.
fn scaled(d: SimDuration, m: u64) -> SimDuration {
    SimDuration::from_nanos(d.as_nanos().checked_mul(m).expect("shift overflow"))
}

/// Mutable execution state shared by the run modes, generic over where the
/// events go.
struct Exec<'a, S: EventSink> {
    platform: &'a Platform,
    sink: S,
    stream: FifoResource,
    cpu_now: SimTime,
    corr: IdAllocator,
    op_ids: IdAllocator,
    /// Runtime API names interned once per run — the hot launch path never
    /// touches the intern hash map, let alone allocates.
    n_launch: NameId,
    n_memcpy: NameId,
    n_aten_to: NameId,
    /// When probing a periodic block, emitted events are also logged here.
    probe: Option<BlockLog>,
}

impl<'a, S: EventSink> Exec<'a, S> {
    fn new(platform: &'a Platform, mut sink: S) -> Self {
        let n_launch = sink.intern_name("cudaLaunchKernel");
        let n_memcpy = sink.intern_name("cudaMemcpyAsync");
        let n_aten_to = sink.intern_name("aten::to");
        Exec {
            platform,
            sink,
            stream: FifoResource::new(),
            cpu_now: SimTime::ZERO,
            corr: IdAllocator::starting_at(1),
            op_ids: IdAllocator::new(),
            n_launch,
            n_memcpy,
            n_aten_to,
            probe: None,
        }
    }

    fn emit_cpu(&mut self, ev: CpuOpEvent) {
        if let Some(p) = self.probe.as_mut() {
            p.cpu.push(ev);
        }
        self.sink.record_cpu_op(ev);
    }

    fn emit_launch(&mut self, ev: RuntimeLaunchEvent) {
        if let Some(p) = self.probe.as_mut() {
            p.launches.push(ev);
        }
        self.sink.record_launch(ev);
    }

    fn emit_kernel(&mut self, ev: KernelEvent, tag: KernelClassTag, arrival: SimTime) {
        if let Some(p) = self.probe.as_mut() {
            p.kernels.push(ProbedKernel { ev, tag, arrival });
        }
        self.sink.record_kernel(ev, tag);
    }

    /// Records the host→device input copy (`aten::to` + `cudaMemcpyAsync`).
    fn h2d_input(&mut self, bytes: u64) {
        let copy = self.platform.h2d_transfer(bytes);
        if copy.is_zero() {
            return; // tightly-coupled unified memory: no copy
        }
        let begin = self.cpu_now;
        let corr = CorrelationId::new(self.corr.next_id());
        self.emit_launch(RuntimeLaunchEvent {
            name: self.n_memcpy,
            thread: ThreadId::MAIN,
            begin,
            end: begin + copy,
            correlation: corr,
        });
        self.cpu_now += copy;
        let id = OpId::new(self.op_ids.next_id());
        self.emit_cpu(CpuOpEvent {
            id,
            name: self.n_aten_to,
            thread: ThreadId::MAIN,
            begin,
            end: self.cpu_now,
        });
    }

    /// Records a plain CPU operator of the given duration.
    fn cpu_op(&mut self, name: NameId, dur: SimDuration) {
        let begin = self.cpu_now;
        self.cpu_now += dur;
        let id = OpId::new(self.op_ids.next_id());
        self.emit_cpu(CpuOpEvent {
            id,
            name,
            thread: ThreadId::MAIN,
            begin,
            end: self.cpu_now,
        });
    }

    /// Executes a top-level operator list, replicating a detected periodic
    /// region once its timing proves periodic. Returns the number of
    /// blocks replicated rather than simulated (0 on the fallback path).
    fn exec_ops(&mut self, ops: &[OpNode], fast: bool) -> u64 {
        let rep = if fast { detect_periodic(ops) } else { None };
        let Some(rep) = rep else {
            for op in ops {
                self.exec_op(op);
            }
            return 0;
        };
        for op in &ops[..rep.start] {
            self.exec_op(op);
        }
        let mut replicated = 0;
        let mut prev: Option<BlockLog> = None;
        let mut done = 0;
        while done < rep.blocks {
            let s = rep.start + done * rep.period;
            let log = self.exec_block(&ops[s..s + rep.period]);
            done += 1;
            if let Some(shift) = prev.as_ref().and_then(|p| periodic_shift(p, &log)) {
                replicated = (rep.blocks - done) as u64;
                self.replicate(&log, shift, replicated);
                break;
            }
            prev = Some(log);
        }
        for op in &ops[rep.start + rep.blocks * rep.period..] {
            self.exec_op(op);
        }
        replicated
    }

    /// Simulates one periodic block normally while logging everything it
    /// emits plus its entry/exit simulation state.
    fn exec_block(&mut self, ops: &[OpNode]) -> BlockLog {
        debug_assert!(self.probe.is_none());
        self.probe = Some(BlockLog {
            entry_cpu: self.cpu_now,
            entry_free: self.stream.free_at(),
            exit_cpu: self.cpu_now,
            exit_free: self.stream.free_at(),
            op_base: self.op_ids.peek(),
            corr_base: self.corr.peek(),
            cpu: Vec::new(),
            launches: Vec::new(),
            kernels: Vec::new(),
        });
        for op in ops {
            self.exec_op(op);
        }
        let mut log = self.probe.take().expect("probe log in place");
        log.exit_cpu = self.cpu_now;
        log.exit_free = self.stream.free_at();
        log
    }

    /// Emits `blocks` copies of the probed block shifted by multiples of
    /// `shift`, then advances the simulation state (clock, stream free
    /// point, ID allocators) to exactly where per-operator simulation
    /// would have landed.
    fn replicate(&mut self, log: &BlockLog, shift: Shift, blocks: u64) {
        debug_assert!(self.probe.is_none());
        let ops_per_block = log.cpu.len() as u64;
        let corrs_per_block = log.launches.len() as u64;
        // The allocators must sit exactly one block past the logged base,
        // or the replicated IDs below would collide with live ones.
        debug_assert_eq!(self.op_ids.peek(), log.op_base + ops_per_block);
        debug_assert_eq!(self.corr.peek(), log.corr_base + corrs_per_block);
        // One bulk call: aggregate sinks (RunSummary) fold the whole region
        // in a single pass over the block; the trace sink extends its
        // columns without per-event dispatch.
        let kernels: Vec<(KernelEvent, KernelClassTag)> =
            log.kernels.iter().map(|k| (k.ev, k.tag)).collect();
        self.sink.record_replicas(
            &ReplicaBlock {
                cpu: &log.cpu,
                launches: &log.launches,
                kernels: &kernels,
                cpu_shift: shift.cpu,
                kernel_shift: shift.kernel,
                op_stride: ops_per_block,
                corr_stride: corrs_per_block,
            },
            blocks,
        );
        self.cpu_now += scaled(shift.cpu, blocks);
        if !log.kernels.is_empty() {
            // Zero-duration admission advances the stream's free point
            // without recording a busy interval.
            let free = log.exit_free + scaled(shift.kernel, blocks);
            self.stream.admit(free, SimDuration::ZERO);
        }
        self.op_ids.advance(blocks * ops_per_block);
        self.corr.advance(blocks * corrs_per_block);
    }

    /// Replays a pre-priced schedule: the workload fast path. Performs
    /// exactly the arithmetic [`Exec::exec_op`]/[`Exec::launch_kernel`]
    /// perform, in the same order, minus the tree recursion, per-event
    /// string hashing and duration-model evaluation the schedule already
    /// paid at compile time.
    fn exec_schedule(&mut self, sched: &Schedule) {
        // Interning in first-use order reproduces the name table lazy
        // execution would have built (re-interning a known name is a no-op).
        let names: Vec<NameId> = sched
            .names
            .iter()
            .map(|n| self.sink.intern_name(n))
            .collect();
        let mut open: Vec<(OpId, NameId, SimTime)> = Vec::with_capacity(16);
        for step in &sched.steps {
            match *step {
                Step::Open { name, cost } => {
                    let id = OpId::new(self.op_ids.next_id());
                    open.push((id, names[name as usize], self.cpu_now));
                    self.cpu_now += cost;
                }
                Step::Close => {
                    let (id, name, begin) = open.pop().expect("balanced schedule");
                    self.emit_cpu(CpuOpEvent {
                        id,
                        name,
                        thread: ThreadId::MAIN,
                        begin,
                        end: self.cpu_now,
                    });
                }
                Step::Kernel { name, dur, tag } => {
                    let launch_begin = self.cpu_now;
                    self.cpu_now += sched.launch_cost;
                    let corr = CorrelationId::new(self.corr.next_id());
                    self.emit_launch(RuntimeLaunchEvent {
                        name: self.n_launch,
                        thread: ThreadId::MAIN,
                        begin: launch_begin,
                        end: self.cpu_now,
                        correlation: corr,
                    });
                    let arrival = launch_begin + sched.launch_overhead;
                    let busy = self.stream.admit(arrival, dur);
                    self.emit_kernel(
                        KernelEvent {
                            name: names[name as usize],
                            stream: StreamId::DEFAULT,
                            begin: busy.start,
                            end: busy.end,
                            correlation: corr,
                        },
                        tag,
                        arrival,
                    );
                }
            }
        }
        debug_assert!(open.is_empty(), "schedule opens/closes balance");
    }

    /// Recursively executes one operator node: pay its framework cost,
    /// run children, launch its kernels.
    fn exec_op(&mut self, op: &OpNode) {
        let begin = self.cpu_now;
        let id = OpId::new(self.op_ids.next_id());
        let name = self.sink.intern_name(&op.name);
        self.cpu_now += self.platform.cpu.op_cost(op.complexity);
        for child in &op.children {
            self.exec_op(child);
        }
        for kernel in &op.kernels {
            self.launch_kernel(kernel, 1.0);
        }
        self.emit_cpu(CpuOpEvent {
            id,
            name,
            thread: ThreadId::MAIN,
            begin,
            end: self.cpu_now,
        });
    }

    /// Launches one kernel: `cudaLaunchKernel` on the CPU, delivery across
    /// the interconnect, FIFO admission on the stream.
    fn launch_kernel(&mut self, spec: &KernelSpec, gemm_factor: f64) {
        let launch_begin = self.cpu_now;
        self.cpu_now += self.platform.cpu.launch_call_cost();
        let launch_end = self.cpu_now;
        let corr = CorrelationId::new(self.corr.next_id());
        self.emit_launch(RuntimeLaunchEvent {
            name: self.n_launch,
            thread: ThreadId::MAIN,
            begin: launch_begin,
            end: launch_end,
            correlation: corr,
        });
        // Kernel names repeat across layers, so this is a hash hit (no
        // allocation) for all but the first launch of each distinct shape.
        let name = self.sink.intern_name(&spec.name);
        // The kernel reaches the head of the stream one full launch
        // overhead after the launch call started (CPU call + wire/driver).
        let arrival = launch_begin + self.platform.launch_overhead();
        let dur = self.kernel_duration(spec, gemm_factor);
        let busy = self.stream.admit(arrival, dur);
        self.emit_kernel(
            KernelEvent {
                name,
                stream: StreamId::DEFAULT,
                begin: busy.start,
                end: busy.end,
                correlation: corr,
            },
            kernel_class_tag(spec.work.class),
            arrival,
        );
    }

    fn kernel_duration(&self, spec: &KernelSpec, gemm_factor: f64) -> SimDuration {
        let base = self.platform.gpu.kernel_duration(&spec.work);
        if spec.work.class == KernelClass::Gemm && gemm_factor != 1.0 {
            SimDuration::from_nanos_f64(base.as_nanos_f64() * gemm_factor)
        } else {
            base
        }
    }

    fn into_sink(self) -> S {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::{zoo, Phase};

    fn wl(batch: u32) -> Workload {
        Workload::new(zoo::gpt2(), Phase::Prefill, batch, 512)
    }

    #[test]
    fn eager_trace_is_valid_and_complete() {
        let engine = Engine::new(Platform::intel_h100());
        let t = engine.run(&wl(1), ExecMode::Eager);
        t.validate().unwrap();
        assert_eq!(t.kernels().len(), 402);
        // Every kernel has a launch; there is one extra launch (the memcpy).
        assert_eq!(t.launches().len(), 403);
        assert_eq!(t.meta().exec_mode, "eager");
    }

    #[test]
    fn execution_is_deterministic() {
        let engine = Engine::new(Platform::gh200());
        let a = engine.run(&wl(4), ExecMode::Eager);
        let b = engine.run(&wl(4), ExecMode::Eager);
        assert_eq!(a, b);
    }

    #[test]
    fn small_batch_kernels_start_one_launch_overhead_after_call() {
        // CPU-bound region: no queuing, so t_l == platform launch overhead.
        let platform = Platform::intel_h100();
        let engine = Engine::new(platform.clone());
        let t = engine.run(&wl(1), ExecMode::Eager);
        let overhead = platform.launch_overhead();
        // Skip the memcpy launch (no kernel); inspect the first real kernel.
        let k = t.kernels().get(0);
        let l = t
            .launches()
            .iter()
            .find(|l| l.correlation == k.correlation)
            .unwrap();
        assert_eq!(k.begin.duration_since(l.begin), overhead);
    }

    #[test]
    fn large_batch_kernels_queue() {
        // GPU-bound region: kernels start much later than launch+overhead.
        let platform = Platform::intel_h100();
        let engine = Engine::new(platform.clone());
        let t = engine.run(&wl(64), ExecMode::Eager);
        let overhead = platform.launch_overhead();
        let last = t.kernels().last().unwrap();
        let l = t
            .launches()
            .iter()
            .find(|l| l.correlation == last.correlation)
            .unwrap();
        assert!(last.begin.duration_since(l.begin) > overhead * 10);
    }

    #[test]
    fn flash_attention_launches_fewer_kernels() {
        let engine = Engine::new(Platform::intel_h100());
        let eager = engine.run(&wl(8), ExecMode::Eager);
        let flash = engine.run(&wl(8), ExecMode::FlashAttention2);
        assert!(flash.kernels().len() < eager.kernels().len());
        flash.validate().unwrap();
    }

    #[test]
    fn cuda_graph_mode_has_single_launch_timestamp() {
        let engine = Engine::new(Platform::intel_h100());
        let t = engine.run(&wl(1), ExecMode::TorchCompile(CompileMode::ReduceOverhead));
        t.validate().unwrap();
        let graph_launches: Vec<_> = t
            .launches()
            .iter()
            .filter(|l| t.name(l.name) == "cudaGraphLaunch")
            .collect();
        assert!(!graph_launches.is_empty());
        // All replayed nodes share the same launch-call window.
        let first = graph_launches[0];
        assert!(graph_launches
            .iter()
            .all(|l| l.begin == first.begin && l.end == first.end));
    }

    #[test]
    fn compiled_modes_beat_eager_latency_at_batch_1() {
        let engine = Engine::new(Platform::intel_h100());
        let span = |t: &Trace| t.span();
        let eager = span(&engine.run(&wl(1), ExecMode::Eager));
        for cm in CompileMode::all() {
            let t = engine.run(&wl(1), ExecMode::TorchCompile(cm));
            assert!(
                span(&t) < eager,
                "{}: {} !< {}",
                cm.label(),
                span(&t),
                eager
            );
        }
    }

    #[test]
    fn tight_coupling_skips_input_copy() {
        let engine = Engine::new(Platform::mi300a());
        let t = engine.run(&wl(1), ExecMode::Eager);
        assert!(t
            .launches()
            .iter()
            .all(|l| t.name(l.name) != "cudaMemcpyAsync"));
        let lc = Engine::new(Platform::intel_h100()).run(&wl(1), ExecMode::Eager);
        assert!(lc
            .launches()
            .iter()
            .any(|l| lc.name(l.name) == "cudaMemcpyAsync"));
    }

    #[test]
    fn trace_meta_records_run_configuration() {
        let engine = Engine::new(Platform::gh200());
        let w = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 16, 512);
        let t = engine.run(&w, ExecMode::Eager);
        let m = t.meta();
        assert_eq!(m.model, "bert-base-uncased");
        assert_eq!(m.platform, "gh200");
        assert_eq!(m.batch_size, 16);
        assert_eq!(m.seq_len, 512);
        assert_eq!(m.phase, "prefill");
    }

    #[test]
    fn run_summary_matches_trace_reductions_for_every_mode() {
        let engine = Engine::new(Platform::intel_h100());
        let modes = [
            ExecMode::Eager,
            ExecMode::FlashAttention2,
            ExecMode::TorchCompile(CompileMode::Default),
            ExecMode::TorchCompile(CompileMode::ReduceOverhead),
        ];
        for mode in modes {
            let w = wl(4);
            let trace = engine.run(&w, mode);
            let summary = engine.run_summary(&w, mode);
            let reduced = skip_trace::summarize_trace(&trace);
            assert_eq!(summary.latency(), reduced.latency(), "{}", mode.label());
            assert_eq!(summary.span(), trace.span(), "{}", mode.label());
            assert_eq!(summary.cpu_ops(), trace.cpu_ops().len() as u64);
            assert_eq!(summary.launches(), trace.launches().len() as u64);
            assert_eq!(summary.kernels(), trace.kernels().len() as u64);
            assert_eq!(summary.gpu_busy(), reduced.gpu_busy(), "{}", mode.label());
        }
    }

    #[test]
    fn summary_attributes_busy_time_per_class() {
        let engine = Engine::new(Platform::intel_h100());
        let s = engine.run_summary(&wl(8), ExecMode::Eager);
        let gemm = s.class_busy(kernel_class_tag(KernelClass::Gemm));
        assert!(gemm > SimDuration::ZERO, "prefill is GEMM-heavy");
        assert!(gemm > s.class_busy(kernel_class_tag(KernelClass::Gather)));
        assert_eq!(
            s.gpu_busy(),
            [
                KernelClass::Gemm,
                KernelClass::Elementwise,
                KernelClass::Reduction,
                KernelClass::Gather,
                KernelClass::Memory,
                KernelClass::FusedAttention,
                KernelClass::FusedChain,
                KernelClass::Null,
            ]
            .into_iter()
            .fold(SimDuration::ZERO, |acc, c| acc
                + s.class_busy(kernel_class_tag(c)))
        );
    }

    /// A hand-built graph of identical layer blocks must take the
    /// replication path and still produce the trace full simulation would.
    #[test]
    fn synthetic_periodic_graph_replicates_exactly() {
        use skip_hw::KernelWork;
        use skip_llm::OperatorGraph;

        let layer = || {
            OpNode::composite(
                "layer",
                vec![
                    OpNode::simple(
                        "aten::linear",
                        vec![KernelSpec::new("gemm_64", KernelWork::gemm(64, 64, 64, 2))],
                    ),
                    OpNode::view("aten::view"),
                    OpNode::simple(
                        "aten::gelu",
                        vec![KernelSpec::new(
                            "gelu_4096",
                            KernelWork::elementwise(4096, 2, 8.0, 2),
                        )],
                    ),
                ],
            )
        };
        for layers in [3usize, 8, 24] {
            let ops: Vec<OpNode> = (0..layers).map(|_| layer()).collect();
            let graph = OperatorGraph::from_ops(ops);
            for platform in Platform::paper_trio() {
                let engine = Engine::new(platform);
                let meta = TraceMeta::default();
                let fast = engine.run_graph(&graph, 1 << 20, meta.clone());
                let reference = engine.run_graph_reference(&graph, 1 << 20, meta);
                fast.validate().unwrap();
                let fast_json = serde_json::to_string(&fast).unwrap();
                let ref_json = serde_json::to_string(&reference).unwrap();
                assert_eq!(fast_json, ref_json, "layers={layers}");
            }
        }
    }

    /// The detector itself: periodic runs found, aperiodic input rejected,
    /// and the probe machinery replicates at least one block on a
    /// sufficiently long periodic list.
    #[test]
    fn periodic_detection_finds_layer_runs() {
        let a = || OpNode::view("a");
        let b = || OpNode::view("b");
        // aaa bababab c → best region is the 4-block "ba" run.
        let ops = vec![a(), a(), a(), b(), a(), b(), a(), b(), a(), b(), a()];
        let rep = detect_periodic(&ops).expect("periodic run detected");
        assert_eq!((rep.start, rep.period), (2, 2));
        assert!(rep.blocks >= 4);
        // All-distinct ops: nothing to replicate.
        let distinct: Vec<OpNode> = (0..12).map(|i| OpNode::view(format!("op{i}"))).collect();
        assert!(detect_periodic(&distinct).is_none());
        // Too short for three blocks.
        assert!(detect_periodic(&[a(), a(), a(), a(), a()]).is_none());
    }

    #[test]
    fn replication_engages_on_periodic_graphs() {
        use skip_hw::KernelWork;

        let layer = || {
            OpNode::simple(
                "aten::linear",
                vec![KernelSpec::new("gemm_32", KernelWork::gemm(32, 32, 32, 2))],
            )
        };
        let ops: Vec<OpNode> = (0..16).map(|_| layer()).collect();
        let platform = Platform::intel_h100();
        let mut exec = Exec::new(&platform, Trace::new(TraceMeta::default()));
        let replicated = exec.exec_ops(&ops, true);
        assert!(
            replicated >= 12,
            "expected most of 16 identical layers replicated, got {replicated}"
        );
        let trace = exec.into_sink();
        trace.validate().unwrap();
        assert_eq!(trace.kernels().len(), 16);
    }
}
