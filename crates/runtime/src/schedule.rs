//! Pre-priced execution schedules: the workload-level fast path.
//!
//! A workload run is fully determined by its operator graph and the
//! platform executing it — the tree walk, the per-operator dispatch costs,
//! the per-kernel duration model, all of it. Re-deriving that structure on
//! every run is what made the summary-sink path (the serving stack's cold
//! latency key) pay tree recursion, string hashing and floating-point
//! duration math per forward pass.
//!
//! This module compiles a (graph, platform) pair once into a flat
//! [`Schedule`] — the *priced pattern* of that shape signature — and caches
//! it in a process-global table. Replaying a schedule is a tight loop over
//! an array of pre-priced steps: operator entry/exit markers carrying
//! dispatch costs, and kernel steps carrying their modeled durations. The
//! replay performs exactly the arithmetic the tree walk performs, in the
//! same order, on the same integer-nanosecond values, so traces produced
//! through a schedule are byte-identical to reference execution (pinned by
//! the engine's differential tests).
//!
//! Cache keys pair the shared graph's allocation identity with a canonical
//! serialization of the platform. Graph identity is sound because schedules
//! are built only for graphs from [`Workload::graph_shared`]'s permanent
//! cache (and the table holds its own `Arc`), so a key's address can never
//! be reused by a different graph.
//!
//! [`Workload::graph_shared`]: skip_llm::Workload::graph_shared

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::{OpNode, OperatorGraph};
use skip_trace::KernelClassTag;

use crate::engine::kernel_class_tag;

/// One pre-priced step of a compiled schedule.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Step {
    /// Operator entry (pre-order): allocate the op id, pay the dispatch
    /// cost. `name` indexes [`Schedule::names`].
    Open {
        /// Index into [`Schedule::names`].
        name: u32,
        /// CPU dispatch cost of this operator node.
        cost: SimDuration,
    },
    /// Operator exit (post-order): emit the CPU op event spanning children
    /// and kernel launches.
    Close,
    /// One kernel launch: `cudaLaunchKernel` on the CPU, delivery across
    /// the interconnect, FIFO admission on the stream.
    Kernel {
        /// Index into [`Schedule::names`].
        name: u32,
        /// Modeled kernel duration on this platform.
        dur: SimDuration,
        /// Class slot for per-class busy accounting.
        tag: KernelClassTag,
    },
}

/// A compiled (graph × platform) execution schedule.
#[derive(Debug)]
pub(crate) struct Schedule {
    /// Flat steps in execution order.
    pub steps: Vec<Step>,
    /// Distinct operator/kernel names in first-intern order — interning
    /// them up front in this order reproduces the name table lazy tree
    /// execution would have built.
    pub names: Vec<String>,
    /// The platform's `cudaLaunchKernel` CPU cost.
    pub launch_cost: SimDuration,
    /// The platform's end-to-end launch overhead (CPU call + wire/driver).
    pub launch_overhead: SimDuration,
}

struct Builder<'a> {
    platform: &'a Platform,
    steps: Vec<Step>,
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Builder<'_> {
    fn name_idx(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("name count fits u32");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }

    /// Mirrors `Exec::exec_op`: enter (id + dispatch cost), children,
    /// kernels, exit.
    fn walk(&mut self, op: &OpNode) {
        let name = self.name_idx(&op.name);
        self.steps.push(Step::Open {
            name,
            cost: self.platform.cpu.op_cost(op.complexity),
        });
        for child in &op.children {
            self.walk(child);
        }
        for kernel in &op.kernels {
            let name = self.name_idx(&kernel.name);
            self.steps.push(Step::Kernel {
                name,
                dur: self.platform.gpu.kernel_duration(&kernel.work),
                tag: kernel_class_tag(kernel.work.class),
            });
        }
        self.steps.push(Step::Close);
    }
}

fn build(graph: &OperatorGraph, platform: &Platform) -> Schedule {
    let mut b = Builder {
        platform,
        steps: Vec::with_capacity(graph.op_count() * 2 + graph.kernel_count()),
        names: Vec::new(),
        index: HashMap::new(),
    };
    for op in graph.ops() {
        b.walk(op);
    }
    Schedule {
        steps: b.steps,
        names: b.names,
        launch_cost: platform.cpu.launch_call_cost(),
        launch_overhead: platform.launch_overhead(),
    }
}

/// Global schedule table. The value holds the graph `Arc` so the pointer
/// key stays allocated (and therefore unique) for the process lifetime.
type ScheduleTable = Mutex<HashMap<(usize, Arc<str>), (Arc<OperatorGraph>, Arc<Schedule>)>>;

/// Resolves (building on first use) the schedule for a shared graph on a
/// platform. `platform_sig` is the engine's canonical platform
/// serialization — platforms are structural data, so equal signatures mean
/// equal pricing.
pub(crate) fn schedule_for(
    graph: &Arc<OperatorGraph>,
    platform: &Platform,
    platform_sig: &Arc<str>,
) -> Arc<Schedule> {
    static TABLE: OnceLock<ScheduleTable> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (Arc::as_ptr(graph) as usize, Arc::clone(platform_sig));
    if let Some((_, sched)) = table.lock().expect("schedule table poisoned").get(&key) {
        return Arc::clone(sched);
    }
    // Compile outside the lock: a racing duplicate build is cheaper than
    // serializing every other shape behind this shape's compilation.
    let built = Arc::new(build(graph, platform));
    let mut locked = table.lock().expect("schedule table poisoned");
    let (_, sched) = locked.entry(key).or_insert((Arc::clone(graph), built));
    Arc::clone(sched)
}
