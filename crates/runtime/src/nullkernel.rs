//! The nullKernel launch-overhead microbenchmark (paper Table V).
//!
//! Launches an empty kernel repeatedly with a synchronization after each
//! launch (so no queueing can hide or inflate the overhead) and reports the
//! mean launch overhead (`t_l` of Eq. 1 on an idle GPU) and the mean kernel
//! duration.

use skip_des::{mean, FifoResource, SimTime};
use skip_hw::{KernelWork, Platform};

/// Results of the nullKernel microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NullKernelStats {
    /// Mean launch overhead in nanoseconds (Table V column 1): start of
    /// kernel execution minus start of the `cudaLaunchKernel` call.
    pub launch_overhead_ns: f64,
    /// Mean kernel duration in nanoseconds (Table V column 2).
    pub duration_ns: f64,
    /// Number of launches measured.
    pub iterations: u32,
}

/// Runs the microbenchmark on `platform`.
///
/// # Panics
///
/// Panics if `iterations` is zero.
///
/// # Example
///
/// ```
/// use skip_hw::Platform;
/// use skip_runtime::nullkernel_microbench;
///
/// let stats = nullkernel_microbench(&Platform::gh200(), 1_000);
/// // Paper Table V: 2771.6 ns launch overhead, 1171.2 ns duration.
/// assert!((stats.launch_overhead_ns - 2771.6).abs() < 2.0);
/// assert!((stats.duration_ns - 1171.2).abs() < 2.0);
/// ```
#[must_use]
pub fn nullkernel_microbench(platform: &Platform, iterations: u32) -> NullKernelStats {
    assert!(iterations > 0, "iterations must be positive");
    let mut stream = FifoResource::new();
    let mut cpu_now = SimTime::ZERO;
    let work = KernelWork::null();
    let mut overheads = Vec::with_capacity(iterations as usize);
    let mut durations = Vec::with_capacity(iterations as usize);

    for _ in 0..iterations {
        let launch_begin = cpu_now;
        cpu_now += platform.cpu.launch_call_cost();
        let arrival = launch_begin + platform.launch_overhead();
        let busy = stream.admit(arrival, platform.gpu.kernel_duration(&work));
        overheads.push(busy.start.duration_since(launch_begin).as_nanos_f64());
        durations.push(busy.end.duration_since(busy.start).as_nanos_f64());
        // cudaDeviceSynchronize: the CPU waits for completion before the
        // next launch, so successive launches never queue.
        cpu_now = cpu_now.max(busy.end);
    }

    NullKernelStats {
        launch_overhead_ns: mean(&overheads),
        duration_ns: mean(&durations),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_v_on_all_platforms() {
        let cases = [
            (Platform::amd_a100(), 2_260.5, 1_440.0),
            (Platform::intel_h100(), 2_374.6, 1_235.2),
            (Platform::gh200(), 2_771.6, 1_171.2),
        ];
        for (p, overhead, duration) in cases {
            let s = nullkernel_microbench(&p, 10_000);
            assert!(
                (s.launch_overhead_ns - overhead).abs() < 2.0,
                "{}: overhead {} vs {}",
                p.name,
                s.launch_overhead_ns,
                overhead
            );
            assert!(
                (s.duration_ns - duration).abs() < 2.0,
                "{}: duration {} vs {}",
                p.name,
                s.duration_ns,
                duration
            );
        }
    }

    #[test]
    fn synchronized_launches_never_queue() {
        // Overhead must not grow with iteration count (no queuing).
        let p = Platform::intel_h100();
        let a = nullkernel_microbench(&p, 10);
        let b = nullkernel_microbench(&p, 10_000);
        assert!((a.launch_overhead_ns - b.launch_overhead_ns).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "iterations must be positive")]
    fn zero_iterations_rejected() {
        let _ = nullkernel_microbench(&Platform::gh200(), 0);
    }
}
