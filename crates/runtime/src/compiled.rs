//! `torch.compile` modelling: Inductor kernel-stream transformation and the
//! compile-time cost model (calibrated against the paper's Table I).

use skip_des::SimDuration;
use skip_hw::{KernelClass, KernelWork};
use skip_llm::{KernelSpec, OperatorGraph};

use crate::mode::CompileMode;

/// Per-forward Dynamo guard-evaluation + compiled-module entry cost, ns.
///
/// Calibrated jointly with the kernel improvements so the Table I speedups
/// (1.20×/1.24×/1.32× for Gemma-2B) land in the paper's bands.
pub(crate) const GUARD_EVAL_NS: f64 = 350_000.0;

/// Device-side overhead of replaying one captured CUDA-graph node, ns.
/// Graph replay is cheaper than a `cudaLaunchKernel` round trip but not
/// free; measured values on Hopper-class parts are around 1–2 µs/node.
pub(crate) const REPLAY_NODE_NS: f64 = 500.0;

/// Per-forward entry cost of the cudagraph-trees replay path, ns — much
/// lighter than the Inductor python wrapper: the whole callable is cached
/// and re-entered directly.
pub(crate) const CUDAGRAPH_ENTRY_NS: f64 = 100_000.0;

/// CPU cost of dispatching one kernel from Inductor's compiled wrapper
/// (Default mode) — far below eager ATen dispatch, ns.
pub(crate) const COMPILED_DISPATCH_NS: f64 = 2_000.0;

/// Longest run of non-GEMM kernels Inductor fuses into one generated
/// kernel.
const FUSION_WINDOW: usize = 12;

/// Fraction of the *non-dominant* memory traffic that survives fusion
/// (intermediates stay in registers/shared memory).
const FUSED_RESIDUAL_BYTES: f64 = 0.10;

/// One-time warmup cost of the eager path (module load + first dispatch) —
/// Table I's "Eager" compilation-time column, seconds.
const EAGER_WARMUP_S: f64 = 0.406_44;

/// Per-operator-node compilation cost by mode, seconds. Fitted so that
/// Gemma-2B (779 operator nodes) reproduces Table I's compile times:
/// 6.2844 s (default), 12.7469 s (reduce-overhead), 387.3 s (max-autotune).
fn per_node_compile_s(mode: CompileMode) -> f64 {
    match mode {
        CompileMode::Default => 7.546e-3,
        CompileMode::ReduceOverhead => 15.84e-3,
        CompileMode::MaxAutotune => 496.65e-3,
    }
}

/// Compile-time cost of preparing `graph` under `mode`, including the eager
/// warmup both paths share (paper Table I).
///
/// # Example
///
/// ```
/// use skip_llm::{zoo, Phase, Workload};
/// use skip_runtime::{compile_time, CompileMode};
///
/// let graph = Workload::new(zoo::gemma_2b(), Phase::Prefill, 1, 1024).graph();
/// let t = compile_time(&graph, CompileMode::MaxAutotune);
/// // Table I: 387.3 s for Gemma-2B under max-autotune.
/// assert!((t.as_secs_f64() - 387.3).abs() / 387.3 < 0.01);
/// ```
#[must_use]
pub fn compile_time(graph: &OperatorGraph, mode: CompileMode) -> SimDuration {
    let secs = EAGER_WARMUP_S + per_node_compile_s(mode) * graph.op_count() as f64;
    SimDuration::from_nanos_f64(secs * 1e9)
}

/// The eager path's "compile time": its warmup (Table I's Eager column).
#[must_use]
pub fn eager_warmup() -> SimDuration {
    SimDuration::from_nanos_f64(EAGER_WARMUP_S * 1e9)
}

fn is_fusible(class: KernelClass) -> bool {
    matches!(
        class,
        KernelClass::Elementwise
            | KernelClass::Reduction
            | KernelClass::Memory
            | KernelClass::Gather
    )
}

/// Transforms an eager kernel stream into the stream Inductor would
/// generate: runs of adjacent non-GEMM kernels fuse into single generated
/// kernels (bounded window), with intermediate tensors kept on chip so only
/// the dominant operand's traffic plus a residual survives.
///
/// GEMMs pass through unchanged — their *duration* improvement under
/// max-autotune is applied at execution time via
/// [`CompileMode::gemm_duration_factor`].
#[must_use]
pub fn inductor_stream(graph: &OperatorGraph, _mode: CompileMode) -> Vec<KernelSpec> {
    let kernels = graph.kernels_in_order();
    let mut out = Vec::with_capacity(kernels.len());
    let mut run: Vec<&KernelSpec> = Vec::new();

    let flush = |run: &mut Vec<&KernelSpec>, out: &mut Vec<KernelSpec>| {
        match run.len() {
            0 => {}
            1 => out.push(run[0].clone()),
            n => {
                let flops: f64 = run.iter().map(|k| k.work.flops).sum();
                let total_bytes: f64 = run.iter().map(|k| k.work.bytes).sum();
                let max_bytes = run.iter().map(|k| k.work.bytes).fold(0.0_f64, f64::max);
                let bytes = max_bytes + FUSED_RESIDUAL_BYTES * (total_bytes - max_bytes);
                out.push(KernelSpec::new(
                    format!("triton_fused_{}_{n}", run[0].name),
                    KernelWork {
                        class: KernelClass::FusedChain,
                        flops,
                        bytes,
                    },
                ));
            }
        }
        run.clear();
    };

    for k in kernels {
        if is_fusible(k.work.class) {
            run.push(k);
            if run.len() == FUSION_WINDOW {
                flush(&mut run, &mut out);
            }
        } else {
            flush(&mut run, &mut out);
            out.push(k.clone());
        }
    }
    flush(&mut run, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::{zoo, Phase, Workload};

    fn gemma_graph() -> OperatorGraph {
        Workload::new(zoo::gemma_2b(), Phase::Prefill, 1, 1024).graph()
    }

    #[test]
    fn compile_times_reproduce_table_i() {
        let g = gemma_graph();
        let cases = [
            (CompileMode::Default, 6.2844),
            (CompileMode::ReduceOverhead, 12.7469),
            (CompileMode::MaxAutotune, 387.3),
        ];
        for (mode, expect) in cases {
            let got = compile_time(&g, mode).as_secs_f64();
            assert!(
                (got - expect).abs() / expect < 0.02,
                "{}: got {got:.3}s, expected {expect}s",
                mode.label()
            );
        }
        assert!((eager_warmup().as_secs_f64() - 0.40644).abs() < 1e-6);
    }

    #[test]
    fn compile_time_ordering_matches_table_i() {
        let g = gemma_graph();
        let d = compile_time(&g, CompileMode::Default);
        let r = compile_time(&g, CompileMode::ReduceOverhead);
        let m = compile_time(&g, CompileMode::MaxAutotune);
        assert!(eager_warmup() < d && d < r && r < m);
    }

    #[test]
    fn fusion_reduces_kernel_count_and_bytes() {
        let g = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512).graph();
        let fused = inductor_stream(&g, CompileMode::Default);
        assert!(fused.len() < g.kernel_count() / 2 + g.kernel_count() / 4);
        let eager_bytes: f64 = g.kernels_in_order().iter().map(|k| k.work.bytes).sum();
        let fused_bytes: f64 = fused.iter().map(|k| k.work.bytes).sum();
        assert!(fused_bytes < eager_bytes);
    }

    #[test]
    fn fusion_preserves_flops_and_gemms() {
        let g = Workload::new(zoo::gpt2(), Phase::Prefill, 2, 512).graph();
        let fused = inductor_stream(&g, CompileMode::Default);
        let eager_flops: f64 = g.kernels_in_order().iter().map(|k| k.work.flops).sum();
        let fused_flops: f64 = fused.iter().map(|k| k.work.flops).sum();
        assert!((eager_flops - fused_flops).abs() / eager_flops < 1e-12);
        let gemms_eager = g
            .kernels_in_order()
            .iter()
            .filter(|k| k.work.class == KernelClass::Gemm)
            .count();
        let gemms_fused = fused
            .iter()
            .filter(|k| k.work.class == KernelClass::Gemm)
            .count();
        assert_eq!(gemms_eager, gemms_fused);
    }

    #[test]
    fn fusion_window_bounds_chain_length() {
        let g = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 1, 512).graph();
        for k in inductor_stream(&g, CompileMode::Default) {
            if let Some(rest) = k.name.rfind('_') {
                if k.name.starts_with("triton_fused_") {
                    let n: usize = k.name[rest + 1..].parse().unwrap();
                    assert!(n <= FUSION_WINDOW);
                }
            }
        }
    }
}
