//! # skip-runtime — the simulated inference execution engine
//!
//! This crate plays the role PyTorch + CUDA play in the paper: it *executes*
//! a workload's operator graph on a platform model and emits the
//! CUPTI-style trace the SKIP profiler consumes.
//!
//! The execution semantics follow the paper's Fig. 4/5 exactly:
//!
//! * A single CPU thread walks the operator tree, paying the framework
//!   dispatch cost of every operator node.
//! * Each kernel launch costs the CPU a `cudaLaunchKernel` call; the kernel
//!   becomes available to its stream one platform launch-overhead after the
//!   call begins.
//! * The GPU stream executes kernels FIFO: a kernel starts at the later of
//!   its availability and the previous kernel's completion.
//!
//! From these three rules the paper's central phenomenon *emerges*: while
//! kernel durations are short (small batches), every kernel starts exactly
//! one launch-overhead after its launch call — TKLQT is flat and the
//! workload is CPU-bound; once durations exceed the CPU's inter-launch gap,
//! kernels queue and TKLQT ramps — GPU-bound.
//!
//! Execution modes ([`ExecMode`]):
//!
//! * [`ExecMode::Eager`] — the baseline everywhere in the paper.
//! * [`ExecMode::FlashAttention2`] — domain-specific fusion (§II-C).
//! * [`ExecMode::TorchCompile`] — graph synthesis with
//!   [`CompileMode::Default`], [`CompileMode::ReduceOverhead`] (CUDA
//!   Graphs), or [`CompileMode::MaxAutotune`] (Triton-tuned kernels),
//!   including the compile-time cost model calibrated against Table I.
//!
//! # Example
//!
//! ```
//! use skip_hw::Platform;
//! use skip_llm::{zoo, Phase, Workload};
//! use skip_runtime::{Engine, ExecMode};
//!
//! let engine = Engine::new(Platform::intel_h100());
//! let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);
//! let trace = engine.run(&wl, ExecMode::Eager);
//! trace.validate().unwrap();
//! assert_eq!(trace.kernels().len(), 402); // eager GPT2 K_eager
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod engine;
mod generate;
mod mode;
mod nullkernel;
mod schedule;

pub use compiled::{compile_time, eager_warmup, inductor_stream};
pub use engine::{kernel_class_tag, Engine};
pub use generate::GenerationReport;
pub use mode::{CompileMode, ExecMode};
pub use nullkernel::{nullkernel_microbench, NullKernelStats};
