//! Property tests for the paged KV-cache allocator invariants.

use proptest::prelude::*;
use skip_mem::{BlockAllocator, KvSpec};
use std::collections::BTreeSet;

/// A random allocator op: grow some owner to a token count, or release it.
#[derive(Debug, Clone, Copy)]
enum Op {
    Grow { owner: u64, tokens: u64 },
    Release { owner: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u64..8, 0u64..600, 0u32..4).prop_map(|(owner, tokens, kind)| {
        if kind == 0 {
            Op::Release { owner }
        } else {
            Op::Grow { owner, tokens }
        }
    })
}

fn apply(pool: &mut BlockAllocator, spec: &KvSpec, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Grow { owner, tokens } => {
                let _ = pool.grow_to(owner, tokens, spec);
            }
            Op::Release { owner } => {
                pool.release(owner);
            }
        }
    }
}

proptest! {
    /// allocated + free == total after every operation, for any sequence.
    #[test]
    fn accounting_identity(
        total in 1u32..64,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let spec = KvSpec { bytes_per_token: 1024, block_tokens: 16 };
        let mut pool = BlockAllocator::new(total);
        for &op in &ops {
            match op {
                Op::Grow { owner, tokens } => { let _ = pool.grow_to(owner, tokens, &spec); }
                Op::Release { owner } => { pool.release(owner); }
            }
            prop_assert_eq!(pool.used_blocks() + pool.free_blocks(), pool.total_blocks());
        }
    }

    /// No block is ever owned by two requests, every owned block is a real
    /// block id, and owned counts match the used-block counter.
    #[test]
    fn no_block_owned_twice(
        total in 1u32..64,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let spec = KvSpec { bytes_per_token: 1024, block_tokens: 16 };
        let mut pool = BlockAllocator::new(total);
        apply(&mut pool, &spec, &ops);
        let mut seen = BTreeSet::new();
        let mut owned = 0u32;
        for owner in pool.owners() {
            for b in pool.table(owner).unwrap().blocks() {
                prop_assert!(b.0 < total, "block id {} out of range", b.0);
                prop_assert!(seen.insert(b.0), "block {} owned twice", b.0);
                owned += 1;
            }
        }
        prop_assert_eq!(owned, pool.used_blocks());
    }

    /// Replaying the same operation sequence on two pools yields identical
    /// states — allocation order is deterministic, never hash-ordered.
    #[test]
    fn replay_is_deterministic(
        total in 1u32..64,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let spec = KvSpec { bytes_per_token: 1024, block_tokens: 16 };
        let mut a = BlockAllocator::new(total);
        let mut b = BlockAllocator::new(total);
        apply(&mut a, &spec, &ops);
        apply(&mut b, &spec, &ops);
        prop_assert_eq!(a, b);
    }

    /// grow + release round-trips: releasing everything restores a pool
    /// indistinguishable from fresh (modulo cumulative counters).
    #[test]
    fn full_release_restores_free_pool(
        total in 1u32..64,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let spec = KvSpec { bytes_per_token: 1024, block_tokens: 16 };
        let mut pool = BlockAllocator::new(total);
        apply(&mut pool, &spec, &ops);
        for owner in pool.owners() {
            pool.release(owner);
        }
        prop_assert_eq!(pool.free_blocks(), total);
        prop_assert_eq!(pool.occupancy(), 0.0);
        prop_assert_eq!(pool.fragmented_tokens(&spec), 0);
        // A fresh reservation starts from block 0 again.
        if pool.grow_to(42, 1, &spec).is_ok() {
            prop_assert_eq!(pool.table(42).unwrap().blocks()[0].0, 0);
        }
    }

    /// Failed grows are all-or-nothing: a rejected reservation never
    /// changes ownership.
    #[test]
    fn failed_grow_is_atomic(
        total in 1u32..16,
        tokens in 0u64..2_000,
    ) {
        let spec = KvSpec { bytes_per_token: 1024, block_tokens: 16 };
        let mut pool = BlockAllocator::new(total);
        let before_free = pool.free_blocks();
        match pool.grow_to(0, tokens, &spec) {
            Ok(added) => prop_assert_eq!(pool.free_blocks(), before_free - added),
            Err(e) => {
                prop_assert_eq!(pool.free_blocks(), before_free);
                prop_assert!(pool.table(0).is_none());
                prop_assert!(e.needed > e.free);
            }
        }
    }

    /// Fragmentation is bounded by one partial block per owner.
    #[test]
    fn fragmentation_bounded_per_owner(
        total in 1u32..64,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let spec = KvSpec { bytes_per_token: 1024, block_tokens: 16 };
        let mut pool = BlockAllocator::new(total);
        apply(&mut pool, &spec, &ops);
        let owners = pool.owners().len() as u64;
        prop_assert!(pool.fragmented_tokens(&spec) < owners.max(1) * u64::from(spec.block_tokens));
    }
}
