//! Deterministic paged block allocator with per-request block tables.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::spec::KvSpec;

/// Index of one fixed-size KV block in the device pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// One request's ordered list of owned blocks plus its logical token count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockTable {
    blocks: Vec<BlockId>,
    tokens: u64,
}

impl BlockTable {
    /// The blocks owned by this request, in allocation order.
    #[must_use]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Cached tokens currently stored in the table.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Token slots this table could hold without growing.
    #[must_use]
    pub fn capacity_tokens(&self, spec: &KvSpec) -> u64 {
        self.blocks.len() as u64 * u64::from(spec.block_tokens)
    }
}

/// Error returned when a reservation cannot be satisfied.
///
/// The allocation is all-or-nothing: on failure the allocator state is
/// unchanged, so the caller can evict a victim and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBlocks {
    /// Blocks the reservation still needed.
    pub needed: u32,
    /// Blocks that were actually free.
    pub free: u32,
}

impl fmt::Display for OutOfBlocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KV pool exhausted: need {} more blocks, {} free",
            self.needed, self.free
        )
    }
}

impl std::error::Error for OutOfBlocks {}

/// Cumulative allocator counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// High-water mark of blocks in use.
    pub peak_used_blocks: u32,
    /// Successful reservations that allocated at least one new block.
    pub grow_calls: u64,
    /// Reservations rejected because the pool was exhausted.
    pub failed_allocs: u64,
    /// Blocks returned to the pool by `release`.
    pub released_blocks: u64,
}

/// A fixed pool of KV blocks with deterministic lowest-id-first allocation.
///
/// Invariants (checked by the property suite in `tests/proptests.rs`):
///
/// * `used_blocks() + free_blocks() == total_blocks()` at all times.
/// * No block is owned by two requests, and no owned block is free.
/// * Identical operation sequences produce identical allocator states —
///   the free set is ordered, not a hash set, so replay is bit-exact.
///
/// # Example
///
/// ```
/// use skip_llm::zoo;
/// use skip_mem::{BlockAllocator, KvSpec};
///
/// let spec = KvSpec::for_model(&zoo::llama2_7b(), 16);
/// let mut pool = BlockAllocator::new(8);
/// pool.grow_to(1, 100, &spec).unwrap(); // 100 tokens -> 7 blocks
/// assert_eq!(pool.used_blocks(), 7);
/// assert!(pool.grow_to(2, 100, &spec).is_err()); // only 1 block left
/// pool.release(1);
/// assert_eq!(pool.free_blocks(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAllocator {
    total: u32,
    free: BTreeSet<u32>,
    tables: BTreeMap<u64, BlockTable>,
    stats: MemStats,
}

impl BlockAllocator {
    /// Creates a pool of `total` free blocks numbered `0..total`.
    #[must_use]
    pub fn new(total: u32) -> Self {
        BlockAllocator {
            total,
            free: (0..total).collect(),
            tables: BTreeMap::new(),
            stats: MemStats::default(),
        }
    }

    /// Total blocks in the pool.
    #[must_use]
    pub fn total_blocks(&self) -> u32 {
        self.total
    }

    /// Blocks currently unowned.
    #[must_use]
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Blocks currently owned by some request.
    #[must_use]
    pub fn used_blocks(&self) -> u32 {
        self.total - self.free_blocks()
    }

    /// Fraction of the pool in use, in `[0, 1]` (0 for an empty pool).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            f64::from(self.used_blocks()) / f64::from(self.total)
        }
    }

    /// The block table of `owner`, if it holds any reservation.
    #[must_use]
    pub fn table(&self, owner: u64) -> Option<&BlockTable> {
        self.tables.get(&owner)
    }

    /// Owners with live reservations, in ascending id order.
    #[must_use]
    pub fn owners(&self) -> Vec<u64> {
        self.tables.keys().copied().collect()
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Whether `blocks` more blocks could be reserved right now.
    #[must_use]
    pub fn can_reserve(&self, blocks: u32) -> bool {
        blocks <= self.free_blocks()
    }

    /// Grows `owner`'s table until it covers `tokens` cached tokens,
    /// returning how many new blocks were allocated (possibly zero).
    ///
    /// All-or-nothing: if the pool cannot supply the full deficit, nothing
    /// is allocated and the allocator is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] when the free pool is smaller than the
    /// deficit.
    pub fn grow_to(&mut self, owner: u64, tokens: u64, spec: &KvSpec) -> Result<u32, OutOfBlocks> {
        let needed_blocks = spec.blocks_for(tokens);
        let held = self.tables.get(&owner).map_or(0, |t| t.blocks.len() as u32);
        if needed_blocks <= held {
            if let Some(t) = self.tables.get_mut(&owner) {
                t.tokens = t.tokens.max(tokens);
            }
            return Ok(0);
        }
        let deficit = needed_blocks - held;
        if deficit > self.free_blocks() {
            self.stats.failed_allocs += 1;
            return Err(OutOfBlocks {
                needed: deficit,
                free: self.free_blocks(),
            });
        }
        let table = self.tables.entry(owner).or_default();
        for _ in 0..deficit {
            let id = self
                .free
                .pop_first()
                .expect("free set cannot be empty: deficit was checked");
            table.blocks.push(BlockId(id));
        }
        table.tokens = table.tokens.max(tokens);
        self.stats.grow_calls += 1;
        self.stats.peak_used_blocks = self.stats.peak_used_blocks.max(self.used_blocks());
        Ok(deficit)
    }

    /// Releases every block owned by `owner`, returning how many were
    /// freed (zero if `owner` held nothing).
    pub fn release(&mut self, owner: u64) -> u32 {
        let Some(table) = self.tables.remove(&owner) else {
            return 0;
        };
        let n = table.blocks.len() as u32;
        for BlockId(id) in table.blocks {
            let inserted = self.free.insert(id);
            debug_assert!(inserted, "block {id} was double-owned");
        }
        self.stats.released_blocks += u64::from(n);
        n
    }

    /// Unused token slots across all allocated blocks — the internal
    /// fragmentation of the paged layout.
    #[must_use]
    pub fn fragmented_tokens(&self, spec: &KvSpec) -> u64 {
        self.tables
            .values()
            .map(|t| t.capacity_tokens(spec) - t.tokens)
            .sum()
    }

    /// Fraction of allocated token slots actually holding tokens
    /// (1.0 for an empty pool: nothing allocated, nothing wasted).
    #[must_use]
    pub fn slot_utilization(&self, spec: &KvSpec) -> f64 {
        let capacity: u64 = self.tables.values().map(|t| t.capacity_tokens(spec)).sum();
        if capacity == 0 {
            return 1.0;
        }
        let used: u64 = self.tables.values().map(BlockTable::tokens).sum();
        used as f64 / capacity as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    fn spec() -> KvSpec {
        KvSpec::for_model(&zoo::llama2_7b(), 16)
    }

    #[test]
    fn allocates_lowest_ids_first() {
        let mut pool = BlockAllocator::new(10);
        pool.grow_to(7, 33, &spec()).unwrap(); // 3 blocks
        let blocks: Vec<u32> = pool
            .table(7)
            .unwrap()
            .blocks()
            .iter()
            .map(|b| b.0)
            .collect();
        assert_eq!(blocks, vec![0, 1, 2]);
    }

    #[test]
    fn released_blocks_are_reused_lowest_first() {
        let s = spec();
        let mut pool = BlockAllocator::new(10);
        pool.grow_to(1, 32, &s).unwrap(); // blocks 0,1
        pool.grow_to(2, 32, &s).unwrap(); // blocks 2,3
        pool.release(1);
        pool.grow_to(3, 48, &s).unwrap(); // needs 3: takes 0,1 then 4
        let blocks: Vec<u32> = pool
            .table(3)
            .unwrap()
            .blocks()
            .iter()
            .map(|b| b.0)
            .collect();
        assert_eq!(blocks, vec![0, 1, 4]);
    }

    #[test]
    fn grow_is_idempotent_within_capacity() {
        let s = spec();
        let mut pool = BlockAllocator::new(10);
        assert_eq!(pool.grow_to(1, 20, &s).unwrap(), 2);
        assert_eq!(pool.grow_to(1, 25, &s).unwrap(), 0); // still fits in 2
        assert_eq!(pool.grow_to(1, 33, &s).unwrap(), 1); // third block
        assert_eq!(pool.table(1).unwrap().tokens(), 33);
    }

    #[test]
    fn failed_grow_leaves_state_unchanged() {
        let s = spec();
        let mut pool = BlockAllocator::new(4);
        pool.grow_to(1, 48, &s).unwrap(); // 3 of 4 blocks
        let before = pool.clone();
        let err = pool.grow_to(2, 40, &s).unwrap_err(); // needs 3, 1 free
        assert_eq!(err, OutOfBlocks { needed: 3, free: 1 });
        // Only the failure counter moved.
        assert_eq!(pool.stats().failed_allocs, before.stats().failed_allocs + 1);
        let mut rewound = pool.clone();
        rewound.stats = before.stats;
        assert_eq!(rewound, before);
    }

    #[test]
    fn accounting_identity_holds() {
        let s = spec();
        let mut pool = BlockAllocator::new(16);
        pool.grow_to(1, 100, &s).unwrap();
        pool.grow_to(2, 50, &s).unwrap();
        pool.release(1);
        assert_eq!(pool.used_blocks() + pool.free_blocks(), pool.total_blocks());
        assert_eq!(pool.release(99), 0);
    }

    #[test]
    fn fragmentation_counts_partial_blocks() {
        let s = spec(); // 16 tokens/block
        let mut pool = BlockAllocator::new(16);
        pool.grow_to(1, 17, &s).unwrap(); // 2 blocks, 15 slots wasted
        assert_eq!(pool.fragmented_tokens(&s), 15);
        assert!((pool.slot_utilization(&s) - 17.0 / 32.0).abs() < 1e-12);
        pool.release(1);
        assert_eq!(pool.fragmented_tokens(&s), 0);
        assert_eq!(pool.slot_utilization(&s), 1.0);
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let s = spec();
        let mut pool = BlockAllocator::new(8);
        pool.grow_to(1, 96, &s).unwrap(); // 6 blocks
        pool.release(1);
        pool.grow_to(2, 16, &s).unwrap(); // 1 block
        assert_eq!(pool.stats().peak_used_blocks, 6);
        assert!((pool.occupancy() - 1.0 / 8.0).abs() < 1e-12);
    }
}
