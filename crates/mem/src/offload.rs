//! Coupling-aware eviction costing: recompute vs swap-to-host.

use serde::{Deserialize, Serialize};
use skip_des::SimDuration;
use skip_hw::Interconnect;

/// Time to move `bytes` of KV cache one way across the CPU-GPU
/// interconnect.
///
/// This is exactly [`Interconnect::transfer_time`]; the wrapper exists so
/// memory-subsystem call sites read as what they are. On a 450 GB/s
/// NVLink-C2C link a 512 MiB context moves in ~1.2 ms; over PCIe gen4 the
/// same copy takes ~17 ms — the asymmetry the offload policy exploits.
#[must_use]
pub fn swap_cost(interconnect: &Interconnect, bytes: u64) -> SimDuration {
    interconnect.transfer_time(bytes)
}

/// What to do with a preemption victim's KV blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OffloadPolicy {
    /// Always drop the blocks and re-prefill the context on resume.
    Recompute,
    /// Always copy blocks to host memory and restore them on resume.
    SwapToHost,
    /// Pick per victim: swap when the round-trip copy is cheaper than
    /// re-prefilling, recompute otherwise.
    Auto,
}

impl OffloadPolicy {
    /// Parses the CLI spelling (`recompute` | `swap` | `auto`).
    ///
    /// # Errors
    ///
    /// Returns the offending string for unknown spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "recompute" => Ok(OffloadPolicy::Recompute),
            "swap" => Ok(OffloadPolicy::SwapToHost),
            "auto" => Ok(OffloadPolicy::Auto),
            other => Err(format!(
                "unknown offload policy '{other}' (expected recompute|swap|auto)"
            )),
        }
    }

    /// Decides the action for one victim given both costs.
    ///
    /// `swap_round_trip` is copy-out plus copy-back over the interconnect;
    /// `recompute` is the prefill time to rebuild the victim's context.
    /// Ties go to recompute (it needs no host-side buffer).
    #[must_use]
    pub fn decide(self, swap_round_trip: SimDuration, recompute: SimDuration) -> EvictionAction {
        match self {
            OffloadPolicy::Recompute => EvictionAction::Recompute,
            OffloadPolicy::SwapToHost => EvictionAction::SwapOut,
            OffloadPolicy::Auto => {
                if swap_round_trip < recompute {
                    EvictionAction::SwapOut
                } else {
                    EvictionAction::Recompute
                }
            }
        }
    }
}

impl std::fmt::Display for OffloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OffloadPolicy::Recompute => "recompute",
            OffloadPolicy::SwapToHost => "swap",
            OffloadPolicy::Auto => "auto",
        })
    }
}

/// The resolved fate of a preemption victim's blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionAction {
    /// Blocks dropped; context must be re-prefilled on resume.
    Recompute,
    /// Blocks copied to host now and copied back on resume.
    SwapOut,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_cost_orders_by_coupling() {
        let bytes = 512 << 20; // a 1024-token Llama-2-7B context
        let pcie4 = swap_cost(&Interconnect::pcie_gen4(), bytes);
        let pcie5 = swap_cost(&Interconnect::pcie_gen5(), bytes);
        let c2c = swap_cost(&Interconnect::nvlink_c2c(), bytes);
        let fabric = swap_cost(&Interconnect::infinity_fabric(), bytes);
        assert!(pcie4 > pcie5 && pcie5 > c2c && c2c > fabric);
        // C2C moves 512 MiB in about 1.2 ms.
        assert!((c2c.as_millis_f64() - 1.19).abs() < 0.1);
    }

    #[test]
    fn fixed_policies_ignore_costs() {
        let cheap = SimDuration::from_nanos(1);
        let dear = SimDuration::from_millis(10);
        assert_eq!(
            OffloadPolicy::Recompute.decide(cheap, dear),
            EvictionAction::Recompute
        );
        assert_eq!(
            OffloadPolicy::SwapToHost.decide(dear, cheap),
            EvictionAction::SwapOut
        );
    }

    #[test]
    fn auto_picks_cheaper_and_ties_recompute() {
        let a = SimDuration::from_micros(100);
        let b = SimDuration::from_micros(200);
        assert_eq!(OffloadPolicy::Auto.decide(a, b), EvictionAction::SwapOut);
        assert_eq!(OffloadPolicy::Auto.decide(b, a), EvictionAction::Recompute);
        assert_eq!(OffloadPolicy::Auto.decide(a, a), EvictionAction::Recompute);
    }

    #[test]
    fn parse_round_trips_display() {
        for p in [
            OffloadPolicy::Recompute,
            OffloadPolicy::SwapToHost,
            OffloadPolicy::Auto,
        ] {
            assert_eq!(OffloadPolicy::parse(&p.to_string()).unwrap(), p);
        }
        assert!(OffloadPolicy::parse("nope").is_err());
    }
}
