//! KV-cache geometry: bytes per token, block size, and pool sizing.

use serde::{Deserialize, Serialize};
use skip_hw::GpuModel;
use skip_llm::ModelConfig;

/// The memory geometry of one model's KV cache under paged attention.
///
/// Derived from the architecture alone: every cached token stores a key and
/// a value vector of width [`ModelConfig::kv_dim`] per layer, in FP16. The
/// derivation is GQA-aware — grouped-query models (e.g. Mistral-7B with 8
/// KV heads against 32 query heads) cache only `kv_heads · head_dim`
/// columns, which is exactly why they fit 4x more context per GB.
///
/// # Example
///
/// ```
/// use skip_llm::zoo;
/// use skip_mem::KvSpec;
///
/// let mha = KvSpec::for_model(&zoo::llama2_7b(), 16);   // 32 KV heads
/// let gqa = KvSpec::for_model(&zoo::mistral_7b(), 16);  // 8 KV heads
/// assert_eq!(mha.bytes_per_token, 4 * gqa.bytes_per_token);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvSpec {
    /// KV bytes appended per cached token: `2 (K,V) · layers · kv_dim ·
    /// 2 B (FP16)`.
    pub bytes_per_token: u64,
    /// Token slots per block (vLLM's default page size is 16).
    pub block_tokens: u32,
}

impl KvSpec {
    /// vLLM's default page size, in token slots.
    pub const DEFAULT_BLOCK_TOKENS: u32 = 16;

    /// Derives the KV geometry of `model` with `block_tokens`-token pages.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero or the model has a degenerate
    /// attention shape (zero heads, indivisible head width).
    #[must_use]
    pub fn for_model(model: &ModelConfig, block_tokens: u32) -> Self {
        assert!(block_tokens > 0, "block_tokens must be positive");
        let bytes_per_token = 2 * u64::from(model.layers) * u64::from(model.kv_dim()) * 2;
        KvSpec {
            bytes_per_token,
            block_tokens,
        }
    }

    /// Bytes of one block (`bytes_per_token · block_tokens`).
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.bytes_per_token * u64::from(self.block_tokens)
    }

    /// Blocks needed to hold `tokens` cached tokens (ceiling division).
    #[must_use]
    pub fn blocks_for(&self, tokens: u64) -> u32 {
        let bt = u64::from(self.block_tokens);
        let blocks = tokens.div_ceil(bt);
        u32::try_from(blocks).unwrap_or(u32::MAX)
    }

    /// KV bytes occupied by `blocks` whole blocks.
    #[must_use]
    pub fn bytes_for_blocks(&self, blocks: u32) -> u64 {
        self.block_bytes() * u64::from(blocks)
    }

    /// Bytes moved when handing a `tokens`-token KV cache to another
    /// device: whole blocks, since paged attention migrates pages, not
    /// token tails. This is the byte count a prefill→decode disaggregation
    /// pays per request over the inter-device link.
    #[must_use]
    pub fn handoff_bytes(&self, tokens: u64) -> u64 {
        self.bytes_for_blocks(self.blocks_for(tokens))
    }

    /// Sizes a block pool from a GPU's HBM budget.
    ///
    /// `resident_bytes` (typically the FP16 weights) are subtracted first,
    /// then `reserve_fraction` of the capacity is held back for activations
    /// and workspace; the remainder is carved into blocks.
    ///
    /// # Panics
    ///
    /// Panics if `reserve_fraction` is outside `[0, 1)`.
    #[must_use]
    pub fn pool_blocks(&self, gpu: &GpuModel, resident_bytes: u64, reserve_fraction: f64) -> u32 {
        assert!(
            (0.0..1.0).contains(&reserve_fraction),
            "reserve_fraction must be in [0, 1)"
        );
        let capacity = gpu.hbm_capacity_bytes();
        let reserve = (capacity as f64 * reserve_fraction) as u64;
        let usable = capacity.saturating_sub(resident_bytes + reserve);
        let blocks = usable / self.block_bytes();
        u32::try_from(blocks).unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skip_llm::zoo;

    #[test]
    fn llama2_7b_is_half_mib_per_token() {
        // 2 x 32 layers x (32 kv_heads x 128 head_dim) x 2 B = 524288.
        let spec = KvSpec::for_model(&zoo::llama2_7b(), 16);
        assert_eq!(spec.bytes_per_token, 524_288);
        assert_eq!(spec.block_bytes(), 524_288 * 16);
    }

    #[test]
    fn gqa_shrinks_cache_by_head_ratio() {
        let mha = KvSpec::for_model(&zoo::llama2_7b(), 16);
        let gqa = KvSpec::for_model(&zoo::mistral_7b(), 16);
        assert_eq!(mha.bytes_per_token, 4 * gqa.bytes_per_token);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let spec = KvSpec::for_model(&zoo::llama2_7b(), 16);
        assert_eq!(spec.blocks_for(0), 0);
        assert_eq!(spec.blocks_for(1), 1);
        assert_eq!(spec.blocks_for(16), 1);
        assert_eq!(spec.blocks_for(17), 2);
        assert_eq!(spec.blocks_for(4096), 256);
    }

    #[test]
    fn handoff_moves_whole_blocks() {
        let spec = KvSpec::for_model(&zoo::llama2_7b(), 16);
        assert_eq!(spec.handoff_bytes(0), 0);
        assert_eq!(spec.handoff_bytes(1), spec.block_bytes());
        assert_eq!(spec.handoff_bytes(16), spec.block_bytes());
        assert_eq!(spec.handoff_bytes(17), 2 * spec.block_bytes());
        // 512-token prompt + 1 generated token = 33 blocks ≈ 270 MiB.
        assert_eq!(spec.handoff_bytes(513), 33 * spec.block_bytes());
    }

    #[test]
    fn pool_blocks_subtracts_weights_and_reserve() {
        let gpu = GpuModel::a100_sxm4();
        let model = zoo::llama2_7b();
        let spec = KvSpec::for_model(&model, 16);
        let blocks = spec.pool_blocks(&gpu, model.weight_bytes_fp16(), 0.1);
        let usable =
            gpu.hbm_capacity_bytes() - model.weight_bytes_fp16() - gpu.hbm_capacity_bytes() / 10;
        // Within one block of the exact carve (integer division).
        assert_eq!(u64::from(blocks), usable / spec.block_bytes());
        assert!(blocks > 5_000, "A100 should hold thousands of 7B blocks");
    }

    #[test]
    fn bigger_hbm_means_more_blocks() {
        let model = zoo::llama2_7b();
        let spec = KvSpec::for_model(&model, 16);
        let w = model.weight_bytes_fp16();
        let a100 = spec.pool_blocks(&GpuModel::a100_sxm4(), w, 0.1);
        let gh200 = spec.pool_blocks(&GpuModel::h100_gh200(), w, 0.1);
        let mi300a = spec.pool_blocks(&GpuModel::mi300a_cdna3(), w, 0.1);
        assert!(a100 < gh200 && gh200 < mi300a);
    }

    #[test]
    #[should_panic(expected = "block_tokens")]
    fn zero_block_tokens_rejected() {
        let _ = KvSpec::for_model(&zoo::llama2_7b(), 0);
    }
}
