//! # skip-mem — paged KV-cache memory subsystem
//!
//! vLLM-style paged attention memory management for the serving simulator:
//! the KV cache is carved into fixed-size *blocks* of `block_tokens` token
//! slots each, requests own ordered *block tables*, and a deterministic
//! allocator hands out the lowest-numbered free block first so identical
//! simulations replay bit-identically.
//!
//! The subsystem exists to model the paper's coupling argument on the
//! *memory* axis: when the pool is exhausted the scheduler must evict a
//! victim, and the cost of that eviction depends on the CPU-GPU coupling
//! paradigm:
//!
//! * **Recompute** — drop the victim's blocks and re-prefill its context
//!   later. Costs GPU compute, independent of the interconnect.
//! * **Swap to host** — copy the victim's KV blocks over the CPU-GPU
//!   interconnect and copy them back on resume. Cheap on closely-coupled
//!   (NVLink-C2C at 450 GB/s) and tightly-coupled (unified memory) parts,
//!   expensive over loosely-coupled PCIe.
//!
//! [`OffloadPolicy::Auto`] picks whichever is cheaper for a given victim on
//! a given interconnect, which is what produces the goodput crossover the
//! `kv_capacity` experiment in `skip-bench` demonstrates.
//!
//! # Example
//!
//! ```
//! use skip_hw::GpuModel;
//! use skip_llm::zoo;
//! use skip_mem::{BlockAllocator, KvSpec};
//!
//! let model = zoo::llama2_7b();
//! let spec = KvSpec::for_model(&model, KvSpec::DEFAULT_BLOCK_TOKENS);
//! // Llama-2-7B: 32 layers x 4096 KV width x 2 (K,V) x 2 B = 512 KiB/token.
//! assert_eq!(spec.bytes_per_token, 524_288);
//!
//! // Size the pool from what is left of an A100's HBM after the weights.
//! let gpu = GpuModel::a100_sxm4();
//! let blocks = spec.pool_blocks(&gpu, model.weight_bytes_fp16(), 0.1);
//! let mut pool = BlockAllocator::new(blocks);
//! pool.grow_to(0, 4096, &spec).unwrap();
//! assert_eq!(pool.used_blocks(), 256); // 4096 tokens / 16 per block
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod offload;
mod spec;

pub use alloc::{BlockAllocator, BlockId, BlockTable, MemStats, OutOfBlocks};
pub use offload::{swap_cost, EvictionAction, OffloadPolicy};
pub use spec::KvSpec;
