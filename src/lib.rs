//! # skip-suite — umbrella crate for the `skip-rs` stack
//!
//! Re-exports the whole reproduction stack of *"Characterizing and Optimizing
//! LLM Inference Workloads on CPU-GPU Coupled Architectures"* (ISPASS 2025)
//! under one roof, hosting the runnable examples and the cross-crate
//! integration tests.
//!
//! See the individual crates for the interesting APIs:
//!
//! * [`des`] — deterministic discrete-event simulation core
//! * [`trace`] — operator/kernel trace data model
//! * [`hw`] — calibrated CPU/GPU/interconnect/platform models
//! * [`llm`] — transformer workload generator
//! * [`runtime`] — inference execution engine (eager / fused / compiled)
//! * [`profiler`] — the SKIP profiler (the paper's contribution)
//! * [`fusion`] — proximity-score kernel-fusion recommendation
//! * [`serve`] — online serving simulation (arrivals, batching policies)
//! * [`bench`] — experiment harness regenerating the paper's tables/figures

pub use skip_bench as bench;
pub use skip_core as profiler;
pub use skip_des as des;
pub use skip_fusion as fusion;
pub use skip_hw as hw;
pub use skip_llm as llm;
pub use skip_runtime as runtime;
pub use skip_serve as serve;
pub use skip_trace as trace;
