//! `skip` — command-line front end for the skip-rs stack.
//!
//! ```text
//! skip profile  --model gpt2 --platform gh200 --batch 1 --seq 512 [--mode eager] [--export out.json]
//! skip sweep    --model bert-base-uncased [--platform intel_h100]
//! skip fuse     --model gpt2 [--platform intel_h100] [--chain-len 256]
//! skip generate --model llama-3.2-1b --tokens 32 [--platform gh200] [--batch 1]
//! skip models | skip platforms
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::process::ExitCode;

use skip_core::{attribute_to_operators, classify_sweep, top_kernels, ProfileReport, SweepPoint};
use skip_des::SimDuration;
use skip_fusion::{recommend, FusionAnalysis};
use skip_hw::Platform;
use skip_llm::{zoo, ModelConfig, Phase, Workload};
use skip_runtime::{CompileMode, Engine, ExecMode};
use skip_serve::fleet::plan;
use skip_serve::{
    simulate_fleet_traced, simulate_traced, ArrivalProcess, AutoscaleConfig, FleetBatchPolicy,
    FleetConfig, FleetRouterPolicy, FleetSpec, KvCacheConfig, OffloadPolicy, PlannerConfig, Policy,
    RouterPolicy, ServingConfig, SloTargets, TrafficEnvelope,
};
use skip_trace::chrome;

const USAGE: &str = "\
skip — SKIP profiler & CPU-GPU coupling simulator (ISPASS 2025 reproduction)

USAGE:
    skip profile  --model <id> [--platform <id>] [--batch N] [--seq N] [--mode <m>] [--export FILE]
    skip sweep    --model <id> [--platform <id>|all] [--seq N]
    skip fuse     --model <id> [--platform <id>] [--chain-len N] [--threshold T]
    skip generate --model <id> [--platform <id>] [--batch N] [--seq N] [--tokens N]
    skip serve    --model <id> [--platform <id>] [--qps R] [--requests N] [--max-batch N] [--replicas N]
                  [--policy static|continuous|chunked] [--router shared|rr|jsq]
                  [--batch-size N] [--max-wait-ms T] [--chunk-tokens N]
                  [--seq N] [--tokens N] [--kv-blocks N] [--offload recompute|swap|auto]
                  [--trace-out FILE] [--slo-ttft-ms T] [--slo-e2e-ms T]
    skip serve    --model <id> --fleet <spec> [--disagg] [--autoscale] [--fleet-router rr|jsq|cost]
                  [--policy continuous|chunked] [--chunk-tokens N]
                  [--arrivals poisson|diurnal|bursty] [--peak-qps R] [--period-ms T]
                  [--burst-ms T] [--lull-ms T] [--qps R] [--requests N] [--max-batch N]
                  [--seq N] [--tokens N] [--trace-out FILE] [--slo-ttft-ms T] [--slo-e2e-ms T]
    skip plan     --model <id> [--qps R] [--peak-qps R] [--requests N] [--max-batch N]
                  [--seq N] [--tokens N] [--slo-ttft-ms T] [--slo-e2e-ms T]
                  [--max-replicas N] [--workers N]

FLEET SPECS: comma-separated groups '[prefill=|decode=]<platform>:<count>', e.g.
    --fleet intel_h100:4                              homogeneous unified fleet
    --fleet prefill=gh200:1,decode=intel_h100:3       disaggregated pools
    --fleet gh200:1,intel_h100:3 --disagg             first group prefill, rest decode
    skip models
    skip platforms

MODES: eager | fa2 | compile-default | compile-reduce-overhead | compile-max-autotune
";

fn models() -> Vec<ModelConfig> {
    let mut m = zoo::table_iii();
    m.push(zoo::gemma_2b());
    m.extend(zoo::seven_b_models());
    m.push(zoo::bert_large());
    m.push(zoo::gpt2_medium());
    m.push(zoo::llama31_8b());
    m.push(zoo::qwen25_05b());
    m
}

fn platforms() -> Vec<Platform> {
    let mut p = Platform::paper_trio();
    p.push(Platform::mi300a());
    p
}

fn find_model(id: &str) -> Result<ModelConfig, String> {
    models()
        .into_iter()
        .find(|m| m.name == id)
        .ok_or_else(|| format!("unknown model '{id}' (try `skip models`)"))
}

fn find_platform(id: &str) -> Result<Platform, String> {
    platforms()
        .into_iter()
        .find(|p| p.name == id)
        .ok_or_else(|| format!("unknown platform '{id}' (try `skip platforms`)"))
}

fn parse_mode(id: &str) -> Result<ExecMode, String> {
    Ok(match id {
        "eager" => ExecMode::Eager,
        "fa2" | "flash-attention-2" => ExecMode::FlashAttention2,
        "compile-default" => ExecMode::TorchCompile(CompileMode::Default),
        "compile-reduce-overhead" => ExecMode::TorchCompile(CompileMode::ReduceOverhead),
        "compile-max-autotune" => ExecMode::TorchCompile(CompileMode::MaxAutotune),
        other => return Err(format!("unknown mode '{other}'")),
    })
}

/// Flags that take no value; present means `"true"`.
const BOOL_FLAGS: [&str; 2] = ["disagg", "autoscale"];

/// Parses `--key value` pairs after the subcommand. Flags listed in
/// [`BOOL_FLAGS`] never consume a value.
fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{key}'"));
        };
        if BOOL_FLAGS.contains(&name) {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

fn get_u32(flags: &BTreeMap<String, String>, key: &str, default: u32) -> Result<u32, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad number '{v}'")),
        None => Ok(default),
    }
}

/// Parses an optional `--slo-*-ms` flag into an SLO target. Every
/// subcommand that scores against SLOs shares this, so the same bad input
/// prints the same message regardless of subcommand.
fn get_slo_ms(flags: &BTreeMap<String, String>, key: &str) -> Result<Option<SimDuration>, String> {
    flags
        .get(key)
        .map(|v| {
            v.parse::<f64>()
                .map(|ms| SimDuration::from_nanos_f64(ms * 1e6))
                .map_err(|_| format!("--{key}: bad number '{v}'"))
        })
        .transpose()
}

/// Rejects a zero count flag with the validators' canonical wording
/// (`... must be at least 1`), shared across subcommands.
fn require_at_least_one(flag: &str, v: u32) -> Result<(), String> {
    if v == 0 {
        Err(format!("--{flag} must be at least 1"))
    } else {
        Ok(())
    }
}

fn cmd_profile(flags: &BTreeMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = find_model(flags.get("model").ok_or("--model is required")?)?;
    let platform = find_platform(flags.get("platform").map_or("intel_h100", String::as_str))?;
    let batch = get_u32(flags, "batch", 1)?;
    let seq = get_u32(flags, "seq", 512)?;
    let mode = parse_mode(flags.get("mode").map_or("eager", String::as_str))?;

    let wl = Workload::new(model, Phase::Prefill, batch, seq);
    let trace = Engine::new(platform.clone()).run(&wl, mode);
    let r = ProfileReport::analyze(&trace);

    println!(
        "== {} | {} | {mode} | batch {batch} | seq {seq} ==",
        wl.model.name, platform.name
    );
    println!("TTFT (inference latency) : {}", r.inference_latency);
    println!("TKLQT                    : {}", r.tklqt);
    println!("average kernel duration  : {}", r.akd);
    println!("GPU idle / CPU idle      : {} / {}", r.gpu_idle, r.cpu_idle);
    println!(
        "kernels / launches / ops : {} / {} / {}",
        r.kernel_count, r.launch_count, r.cpu_op_count
    );
    println!(
        "GPU utilization          : {:.1}%",
        r.gpu_utilization() * 100.0
    );

    println!("\ntop kernels:");
    for k in top_kernels(&trace, 5) {
        println!("  {:>5}x {:<44} {}", k.count, k.name, k.total_time);
    }
    println!("\ntop operators by GPU time:");
    for s in attribute_to_operators(&trace).into_iter().take(5) {
        println!(
            "  {:<28} {:>4} inst {:>5} kernels  gpu {}  launch+queue {}",
            s.name, s.instances, s.kernels, s.gpu_time, s.launch_queue_time
        );
    }

    if let Some(path) = flags.get("export") {
        std::fs::write(path, chrome::to_chrome_trace(&trace))?;
        println!("\nwrote Chrome trace to {path}");
    }
    Ok(())
}

fn cmd_sweep(flags: &BTreeMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = find_model(flags.get("model").ok_or("--model is required")?)?;
    let seq = get_u32(flags, "seq", 512)?;
    let selected = flags.get("platform").map_or("all", String::as_str);
    let targets: Vec<Platform> = if selected == "all" {
        Platform::paper_trio()
    } else {
        vec![find_platform(selected)?]
    };

    for platform in targets {
        let engine = Engine::new(platform.clone());
        let mut points = Vec::new();
        println!("== {} on {} ==", model.name, platform.name);
        println!(
            "{:>6} {:>12} {:>12} {:>8}",
            "batch", "ttft_ms", "tklqt_ms", "gpu%"
        );
        for bs in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let wl = Workload::new(model.clone(), Phase::Prefill, bs, seq);
            let r = ProfileReport::analyze(&engine.run(&wl, ExecMode::Eager));
            println!(
                "{bs:>6} {:>12.3} {:>12.3} {:>7.0}%",
                r.inference_latency.as_millis_f64(),
                r.tklqt.as_millis_f64(),
                r.gpu_utilization() * 100.0
            );
            points.push(SweepPoint {
                batch_size: bs,
                tklqt: r.tklqt,
            });
        }
        let class = classify_sweep(&points);
        match class.transition_batch {
            Some(b) => println!("CPU-bound -> GPU-bound transition at batch {b}\n"),
            None => println!("CPU-bound across the whole sweep\n"),
        }
    }
    Ok(())
}

fn cmd_fuse(flags: &BTreeMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = find_model(flags.get("model").ok_or("--model is required")?)?;
    let platform = find_platform(flags.get("platform").map_or("intel_h100", String::as_str))?;
    let chain_len = get_u32(flags, "chain-len", 256)? as usize;
    let threshold: f64 = flags
        .get("threshold")
        .map_or(Ok(1.0), |v| v.parse())
        .map_err(|_| "--threshold: bad number")?;

    let wl = Workload::new(model, Phase::Prefill, 1, 512);
    let trace = Engine::new(platform).run(&wl, ExecMode::Eager);
    let a = FusionAnalysis::of_trace(&trace, chain_len);
    println!(
        "K_eager {} -> K_fused {} ({} chains of {} fused): ideal speedup {:.2}x",
        a.k_eager,
        a.k_fused,
        a.fused_chains,
        a.chain_len,
        a.ideal_speedup()
    );
    println!("\nrecommendations (PS >= {threshold}):");
    for rec in recommend(&trace, chain_len, threshold).into_iter().take(8) {
        println!(
            "  PS={:.2} saves {:>4} launches  {} .. {}",
            rec.proximity_score,
            rec.est_launch_savings,
            rec.chain.first().expect("non-empty chain"),
            rec.chain.last().expect("non-empty chain"),
        );
    }
    Ok(())
}

fn cmd_generate(flags: &BTreeMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = find_model(flags.get("model").ok_or("--model is required")?)?;
    let platform = find_platform(flags.get("platform").map_or("gh200", String::as_str))?;
    let batch = get_u32(flags, "batch", 1)?;
    let seq = get_u32(flags, "seq", 512)?;
    let tokens = get_u32(flags, "tokens", 32)?;

    let r = Engine::new(platform.clone()).generate(&model, batch, seq, tokens, ExecMode::Eager);
    println!(
        "== {} on {} | batch {batch} | prompt {seq} | +{tokens} tokens ==",
        model.name, platform.name
    );
    println!("TTFT        : {}", r.ttft);
    println!("TPOT        : {}", r.tpot());
    println!("end-to-end  : {}", r.end_to_end());
    println!(
        "throughput  : {:.0} tokens/s",
        f64::from(batch) * f64::from(tokens) / r.decode_time.as_secs_f64().max(1e-12)
    );
    Ok(())
}

fn cmd_serve_fleet(
    flags: &BTreeMap<String, String>,
    model: ModelConfig,
    spec: &str,
) -> Result<(), Box<dyn Error>> {
    let mut spec = FleetSpec::parse(spec).map_err(|e| format!("--fleet: {e}"))?;
    if flags.contains_key("disagg") && !spec.is_disaggregated() {
        spec = spec
            .into_disaggregated()
            .map_err(|e| format!("--disagg: {e}"))?;
    }
    let router = FleetRouterPolicy::parse(flags.get("fleet-router").map_or("cost", String::as_str))
        .map_err(|e| format!("--fleet-router: {e}"))?;
    let policy = match flags.get("policy").map_or("continuous", String::as_str) {
        "continuous" => FleetBatchPolicy::Continuous,
        "chunked" | "chunked-prefill" => FleetBatchPolicy::ChunkedPrefill {
            chunk_tokens: get_u32(flags, "chunk-tokens", 128)?,
        },
        other => {
            return Err(format!(
                "--policy: unknown fleet policy '{other}' (expected continuous or chunked)"
            )
            .into())
        }
    };
    let qps: f64 = flags
        .get("qps")
        .map_or(Ok(20.0), |v| v.parse())
        .map_err(|_| "--qps: bad number")?;
    let peak: f64 = flags
        .get("peak-qps")
        .map_or(Ok(qps * 4.0), |v| v.parse())
        .map_err(|_| "--peak-qps: bad number")?;
    let ms = |key: &str, default: u32| -> Result<SimDuration, String> {
        Ok(SimDuration::from_millis(u64::from(get_u32(
            flags, key, default,
        )?)))
    };
    let arrivals = match flags.get("arrivals").map_or("poisson", String::as_str) {
        "poisson" => ArrivalProcess::Poisson { rate_per_s: qps },
        "diurnal" => ArrivalProcess::Diurnal {
            base_rate_per_s: qps,
            peak_rate_per_s: peak,
            period: ms("period-ms", 2000)?,
        },
        "bursty" => ArrivalProcess::Bursty {
            base_rate_per_s: qps,
            burst_rate_per_s: peak,
            burst_len: ms("burst-ms", 400)?,
            lull_len: ms("lull-ms", 2000)?,
        },
        other => {
            return Err(format!(
                "--arrivals: unknown process '{other}' (expected poisson, diurnal, or bursty)"
            )
            .into())
        }
    };
    let cfg = FleetConfig {
        spec,
        model: model.clone(),
        max_batch: get_u32(flags, "max-batch", 8)?,
        requests: get_u32(flags, "requests", 100)?,
        arrivals,
        prompt_len: get_u32(flags, "seq", 128)?,
        new_tokens: get_u32(flags, "tokens", 8)?,
        seed: 2026,
        slo: SloTargets {
            ttft: get_slo_ms(flags, "slo-ttft-ms")?,
            e2e: get_slo_ms(flags, "slo-e2e-ms")?,
        },
        router,
        policy,
        autoscale: flags
            .contains_key("autoscale")
            .then(AutoscaleConfig::default),
    };
    cfg.validate()
        .map_err(|e| format!("{e} (check --fleet / --requests / --max-batch)"))?;

    let (report, ftrace) = simulate_fleet_traced(&cfg);
    println!(
        "== fleet serving {} on {} | {} | router {} | {} arrivals at {qps} req/s ==",
        model.name,
        cfg.spec,
        cfg.policy,
        cfg.router,
        flags.get("arrivals").map_or("poisson", String::as_str)
    );
    println!("completed    : {} requests", report.completed);
    println!(
        "TTFT p50/p95/p99 : {} / {} / {}",
        report.ttft_p50, report.ttft_p95, report.ttft_p99
    );
    println!("e2e  p50/p95     : {} / {}", report.e2e_p50, report.e2e_p95);
    println!("throughput   : {:.0} tokens/s", report.throughput_tok_s);
    println!("makespan     : {}", report.makespan);
    if cfg.spec.is_disaggregated() {
        println!(
            "KV handoff   : {} transfers, {:.1} MB moved | wait p50/p95 {} / {} | link busy {}",
            report.handoffs,
            report.handoff_bytes as f64 / 1e6,
            report.handoff_wait_p50,
            report.handoff_wait_p95,
            report.handoff_transfer_total
        );
    }
    if cfg.autoscale.is_some() {
        println!(
            "autoscaling  : {} up / {} down | peak {} replicas | {:.2} replica-seconds",
            report.scale_ups, report.scale_downs, report.peak_replicas, report.replica_seconds
        );
    }
    if cfg.slo.is_set() {
        println!(
            "SLO          : ttft {:.1}% | e2e {:.1}% | {} / {} in SLO | goodput {:.2} req/s",
            report.slo.ttft_attainment * 100.0,
            report.slo.e2e_attainment * 100.0,
            report.slo.slo_completions,
            report.completed,
            report.slo.goodput_req_s
        );
    }
    if let Some(path) = flags.get("trace-out") {
        let trace = ftrace.to_trace();
        trace.validate()?;
        std::fs::write(path, chrome::to_chrome_trace(&trace))?;
        println!(
            "wrote fleet trace to {path} ({} requests, {} samples, {} scaling events) — open in https://ui.perfetto.dev",
            ftrace.lifecycles.len(),
            ftrace.samples.len(),
            ftrace.scaling.len()
        );
    }
    Ok(())
}

/// `skip plan`: the capacity-frontier planner — enumerate fleet
/// compositions against a traffic envelope, run the pruned generational
/// sweep (waves fanned out through the deterministic harness, analytic
/// bounds and early aborts skipping decided candidates), and print the
/// cost-optimal frontier by replica-seconds billing.
fn cmd_plan(flags: &BTreeMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = find_model(flags.get("model").ok_or("--model is required")?)?;
    let qps: f64 = flags
        .get("qps")
        .map_or(Ok(50.0), |v| v.parse())
        .map_err(|_| "--qps: bad number")?;
    let peak_qps: Option<f64> = flags
        .get("peak-qps")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "--peak-qps: bad number")?;
    let slo = SloTargets {
        ttft: get_slo_ms(flags, "slo-ttft-ms")?,
        e2e: get_slo_ms(flags, "slo-e2e-ms")?,
    };
    let mut cfg = PlannerConfig::new(TrafficEnvelope {
        model: model.clone(),
        qps,
        peak_qps,
        requests: get_u32(flags, "requests", 64)?,
        prompt_len: get_u32(flags, "seq", 256)?,
        new_tokens: get_u32(flags, "tokens", 8)?,
        seed: 2026,
        slo,
    });
    cfg.max_batch = get_u32(flags, "max-batch", 8)?;
    cfg.max_replicas = get_u32(flags, "max-replicas", 4)?;
    require_at_least_one("max-replicas", cfg.max_replicas)?;
    cfg.validate().map_err(|e| format!("skip plan: {e}"))?;
    let workers = match get_u32(flags, "workers", 0)? as usize {
        0 => skip_bench::harness::threads(),
        n => n,
    };

    let sweep = plan::sweep_with(&cfg, |wave, bounds| {
        skip_bench::harness::map_with(workers, wave, |c| plan::evaluate_bounded(&cfg, &c, bounds))
    });
    let outcomes = &sweep.outcomes;
    let total = outcomes.len();
    let feasible = outcomes.iter().filter(|o| o.feasible).count();

    let arrivals = match peak_qps {
        Some(p) if p > qps => format!("diurnal {qps}->{p} req/s"),
        _ => format!("poisson {qps} req/s"),
    };
    println!(
        "== capacity plan for {} | {arrivals} | {} requests | up to {} replicas ==",
        model.name, cfg.envelope.requests, cfg.max_replicas
    );
    println!(
        "{total} candidates evaluated on {} worker(s); {feasible} feasible at >={:.0}% attainment",
        skip_bench::harness::effective_workers(workers),
        cfg.attainment_floor * 100.0
    );
    println!(
        "pruned sweep: {} simulated in full, {} aborted early, {} infeasible by bound, {} dominated",
        sweep.stats.simulated,
        sweep.stats.aborted,
        sweep.stats.pruned_infeasible,
        sweep.stats.pruned_dominated,
    );
    if !slo.is_set() {
        println!("note: no --slo-ttft-ms/--slo-e2e-ms set, so every completed fleet is feasible");
    }
    println!("\ncost-optimal frontier (replica-seconds vs e2e p95):");
    println!(
        "{:<40} {:>10} {:>11} {:>12} {:>6} {:>5}",
        "fleet", "replica-s", "e2e p95 ms", "ttft p95 ms", "slo %", "peak"
    );
    for o in plan::frontier(outcomes) {
        println!(
            "{:<40} {:>10.2} {:>11.0} {:>12.0} {:>6.0} {:>5}",
            o.label,
            o.cost(),
            o.report.e2e_p95.as_millis_f64(),
            o.report.ttft_p95.as_millis_f64(),
            100.0 * f64::from(o.report.slo.slo_completions)
                / f64::from(o.report.slo.completed.max(1)),
            o.report.peak_replicas,
        );
    }
    match plan::cheapest(outcomes) {
        Some(best) => println!(
            "\ncost-optimal fleet: {} at {:.2} replica-seconds (e2e p95 {:.0} ms)",
            best.label,
            best.cost(),
            best.report.e2e_p95.as_millis_f64()
        ),
        None => println!(
            "\nno feasible fleet within {} replicas — raise --max-replicas or relax the SLO",
            cfg.max_replicas
        ),
    }
    Ok(())
}

fn cmd_serve(flags: &BTreeMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = find_model(flags.get("model").ok_or("--model is required")?)?;
    if let Some(spec) = flags.get("fleet") {
        return cmd_serve_fleet(flags, model, spec);
    }
    let platform = find_platform(flags.get("platform").map_or("intel_h100", String::as_str))?;
    let qps: f64 = flags
        .get("qps")
        .map_or(Ok(20.0), |v| v.parse())
        .map_err(|_| "--qps: bad number")?;
    let requests = get_u32(flags, "requests", 100)?;
    let max_batch = get_u32(flags, "max-batch", 16)?;
    let replicas = get_u32(flags, "replicas", 1)?;
    require_at_least_one("replicas", replicas)?;
    let policy = match flags.get("policy").map_or("continuous", String::as_str) {
        "static" => Policy::Static {
            batch_size: get_u32(flags, "batch-size", max_batch)?,
            max_wait: SimDuration::from_millis(u64::from(get_u32(flags, "max-wait-ms", 50)?)),
        },
        "continuous" => Policy::Continuous { max_batch },
        "chunked" | "chunked-prefill" => Policy::ChunkedPrefill {
            max_batch,
            chunk_tokens: get_u32(flags, "chunk-tokens", 128)?,
        },
        other => {
            return Err(format!(
                "--policy: unknown policy '{other}' (expected static, continuous, or chunked)"
            )
            .into())
        }
    };
    let router = RouterPolicy::parse(flags.get("router").map_or("shared", String::as_str))
        .map_err(|e| format!("--router: {e}"))?;
    let offload = flags
        .get("offload")
        .map_or(Ok(OffloadPolicy::Auto), |v| OffloadPolicy::parse(v))?;
    let prompt_len = get_u32(flags, "seq", 128)?;
    let new_tokens = get_u32(flags, "tokens", 8)?;
    let slo = SloTargets {
        ttft: get_slo_ms(flags, "slo-ttft-ms")?,
        e2e: get_slo_ms(flags, "slo-e2e-ms")?,
    };
    // --kv-blocks 0 (the default) models an infinite KV cache.
    let kv = match get_u32(flags, "kv-blocks", 0)? {
        0 => None,
        blocks => Some(KvCacheConfig::with_blocks(blocks, offload)),
    };

    let cfg = ServingConfig {
        platform: platform.clone(),
        model: model.clone(),
        policy,
        requests,
        arrival_rate_per_s: qps,
        prompt_len,
        new_tokens,
        seed: 2026,
        kv,
        slo,
        router,
    };
    cfg.validate().map_err(|e| {
        format!("{e} (check --kv-blocks / --requests / --qps and the policy sizing flags)")
    })?;

    let (report, strace) = simulate_traced(&cfg, replicas);
    let policy_label = match policy {
        Policy::Static {
            batch_size,
            max_wait,
        } => format!(
            "static batch {batch_size} (flush {:.0}ms)",
            max_wait.as_millis_f64()
        ),
        Policy::Continuous { max_batch } => format!("continuous max_batch {max_batch}"),
        Policy::ChunkedPrefill {
            max_batch,
            chunk_tokens,
        } => format!("chunked-prefill max_batch {max_batch} x {chunk_tokens} tok"),
    };
    println!(
        "== serving {} on {replicas}x {} | {policy_label} | router {router} | {qps} req/s ==",
        model.name, platform.name
    );
    println!("completed    : {} requests", report.completed);
    println!(
        "TTFT p50/p95/p99 : {} / {} / {}",
        report.ttft_p50, report.ttft_p95, report.ttft_p99
    );
    println!("e2e  p50/p95     : {} / {}", report.e2e_p50, report.e2e_p95);
    println!("throughput   : {:.0} tokens/s", report.throughput_tok_s);
    println!("makespan     : {}", report.makespan);
    if let Some(kv) = kv {
        println!(
            "KV cache     : {} blocks/replica x {} tokens | offload {}",
            kv.blocks_per_replica, kv.block_tokens, kv.offload
        );
        println!(
            "KV pressure  : {} preemptions ({} swapped, {:.1} MB moved; {} tokens recomputed) | peak occupancy {:.0}%",
            report.preemptions,
            report.swap_outs,
            report.swapped_bytes as f64 / 1e6,
            report.recomputed_tokens,
            report.kv_peak_occupancy * 100.0
        );
    }
    if slo.is_set() {
        let target = |t: Option<SimDuration>| {
            t.map_or_else(|| "-".to_owned(), |t| format!("{:.0}ms", t.as_millis_f64()))
        };
        println!(
            "SLO          : ttft<={} {:.1}% | e2e<={} {:.1}% | {} / {} in SLO",
            target(slo.ttft),
            report.slo.ttft_attainment * 100.0,
            target(slo.e2e),
            report.slo.e2e_attainment * 100.0,
            report.slo.slo_completions,
            report.completed
        );
        println!(
            "goodput      : {:.2} req/s | {:.0} tokens/s under SLO",
            report.slo.goodput_req_s, report.slo.goodput_tok_s
        );
    }
    if let Some(path) = flags.get("trace-out") {
        let trace = strace.to_trace();
        trace.validate()?;
        std::fs::write(path, chrome::to_chrome_trace(&trace))?;
        println!(
            "wrote serving trace to {path} ({} requests, {} counter samples) — open in https://ui.perfetto.dev",
            strace.lifecycles.len(),
            strace.samples.len()
        );
    }
    Ok(())
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    match cmd.as_str() {
        "models" => {
            for m in models() {
                println!(
                    "{:<20} {:>7.0}M params  {} layers",
                    m.name,
                    m.param_count() as f64 / 1e6,
                    m.layers
                );
            }
            Ok(())
        }
        "platforms" => {
            for p in platforms() {
                println!(
                    "{:<12} [{}] {} + {} over {}",
                    p.name,
                    p.coupling.abbrev(),
                    p.cpu.name,
                    p.gpu.name,
                    p.interconnect.name
                );
            }
            Ok(())
        }
        "profile" => cmd_profile(&parse_flags(&args[1..])?),
        "serve" => cmd_serve(&parse_flags(&args[1..])?),
        "plan" => cmd_plan(&parse_flags(&args[1..])?),
        "sweep" => cmd_sweep(&parse_flags(&args[1..])?),
        "fuse" => cmd_fuse(&parse_flags(&args[1..])?),
        "generate" => cmd_generate(&parse_flags(&args[1..])?),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}").into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
