//! RAG pipeline latency across coupling paradigms.
//!
//! The paper's introduction motivates the coupling question with chained
//! AI pipelines: retrieval-augmented generation runs an *encoder* (query
//! embedding for the vector search) and then a *decoder* (the generation
//! LLM consuming the retrieved context), and every stage adds user-visible
//! latency. This example models a latency-critical RAG request:
//!
//! 1. embed the user query with XLM-Roberta (batch 1, 64 tokens),
//! 2. prefill Llama-3.2-1B over the query + retrieved context
//!    (batch 1, 512 tokens) — the time-to-first-token,
//!
//! and compares the end-to-end time across the LC/CC/TC platforms, showing
//! the paper's point: at batch 1 the pipeline is dominated by CPU dispatch
//! performance, so the loosely-coupled Xeon system beats the GH200 even
//! though the GH200's GPU is strictly faster.
//!
//! Run with: `cargo run --example rag_pipeline`

use skip_core::ProfileReport;
use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

fn stage_latency(engine: &Engine, wl: &Workload, mode: ExecMode) -> SimDuration {
    ProfileReport::analyze(&engine.run(wl, mode)).inference_latency
}

fn main() {
    let embed = Workload::new(zoo::xlm_roberta_base(), Phase::Prefill, 1, 64);
    let generate = Workload::new(zoo::llama32_1b(), Phase::Prefill, 1, 512);

    println!("RAG request: XLM-R query embedding (64 tok) -> Llama-3.2-1B prefill (512 tok)\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12}   {:>14}",
        "platform", "embed_ms", "ttft_ms", "total_ms", "vs best"
    );

    let mut rows = Vec::new();
    let mut platforms = Platform::paper_trio();
    platforms.push(Platform::mi300a());
    for platform in platforms {
        let engine = Engine::new(platform.clone());
        let e = stage_latency(&engine, &embed, ExecMode::Eager);
        let g = stage_latency(&engine, &generate, ExecMode::Eager);
        rows.push((platform.name.clone(), e, g, e + g));
    }
    let best = rows
        .iter()
        .map(|r| r.3)
        .min()
        .expect("at least one platform");
    for (name, e, g, total) in &rows {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2}   {:>13.2}x",
            name,
            e.as_millis_f64(),
            g.as_millis_f64(),
            total.as_millis_f64(),
            total.as_nanos_f64() / best.as_nanos_f64()
        );
    }

    // What fusion buys the slowest stage on the CC system (paper §V-C).
    let gh200 = Engine::new(Platform::gh200());
    let eager = stage_latency(&gh200, &generate, ExecMode::Eager);
    let flash = stage_latency(&gh200, &generate, ExecMode::FlashAttention2);
    println!(
        "\nGH200 generation stage with FlashAttention-2: {:.2} ms -> {:.2} ms ({:.2}x)",
        eager.as_millis_f64(),
        flash.as_millis_f64(),
        eager.as_nanos_f64() / flash.as_nanos_f64()
    );
}
