//! Batch-size advisor: find the "sweet spot" batch size for a workload.
//!
//! The paper's contribution #5: each (application, system) pair has a
//! balanced region where both CPU and GPU are well utilized — operating
//! there maximizes system efficiency instead of chasing GPU saturation.
//! This example sweeps batch sizes for every Table III model on every
//! platform, classifies each point with TKLQT, and reports the transition
//! point plus the batch that minimizes latency-per-sequence while keeping
//! the GPU at least half busy.
//!
//! Run with: `cargo run --example batch_size_advisor`

use skip_core::{classify_sweep, Boundedness, ProfileReport, SweepPoint};
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

fn main() {
    let batches = [1u32, 2, 4, 8, 16, 32, 64, 128];
    for model in zoo::table_iii() {
        println!("=== {} ===", model.name);
        for platform in Platform::paper_trio() {
            let engine = Engine::new(platform.clone());
            let mut points = Vec::new();
            let mut reports = Vec::new();
            for &bs in &batches {
                let wl = Workload::new(model.clone(), Phase::Prefill, bs, 512);
                let r = ProfileReport::analyze(&engine.run(&wl, ExecMode::Eager));
                points.push(SweepPoint {
                    batch_size: bs,
                    tklqt: r.tklqt,
                });
                reports.push((bs, r));
            }
            let class = classify_sweep(&points);

            // Sweet spot (paper §V-D's "balanced region"): the batch size
            // where neither processing unit dominates the waiting — GPU
            // idle (launch-shadow slack) and CPU idle (queue-drain slack)
            // are closest to each other relative to the latency. Below it
            // the GPU starves; above it the CPU stalls and user-visible
            // latency climbs.
            let (bs, r) = reports
                .iter()
                .min_by(|a, b| {
                    let balance = |r: &ProfileReport| {
                        (r.gpu_idle.as_nanos_f64() - r.cpu_idle.as_nanos_f64()).abs()
                            / r.inference_latency.as_nanos_f64().max(1.0)
                    };
                    balance(&a.1).total_cmp(&balance(&b.1))
                })
                .expect("non-empty sweep");

            let star = class
                .transition_batch
                .map_or("none".to_owned(), |b| b.to_string());
            let bound = class
                .labels
                .iter()
                .find(|(b, _)| b == bs)
                .map(|&(_, c)| c)
                .unwrap_or(Boundedness::CpuBound);
            println!(
                "  {:<11} transition at bs={:<5} balanced sweet spot bs={:<4} ({:.2} ms/batch, {:.2} ms/seq, GPU {:.0}% busy, {:?})",
                platform.name,
                star,
                bs,
                r.inference_latency.as_millis_f64(),
                r.inference_latency.as_millis_f64() / f64::from(*bs),
                r.gpu_utilization() * 100.0,
                bound
            );
        }
    }
}
