//! Serving-endpoint capacity planning across coupling paradigms.
//!
//! "Which machine should serve this chatbot, and with which batching
//! policy?" — the operational form of the paper's batch-size question.
//! This example simulates a GPT2 chat endpoint (128-token prompts, 8
//! output tokens, 200 ms TTFT SLO per the paper's §II-A) under increasing
//! offered load, and reports the highest load each platform sustains
//! while keeping p95 TTFT under the SLO.
//!
//! Run with: `cargo run --release -p skip-suite --example serving_endpoint`

use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::zoo;
use skip_serve::{simulate, Policy, RouterPolicy, ServingConfig, SloTargets};

const SLO_MS: f64 = 200.0;

fn p95_ms(platform: &Platform, policy: Policy, load: f64) -> f64 {
    simulate(&ServingConfig {
        platform: platform.clone(),
        model: zoo::gpt2(),
        policy,
        requests: 150,
        arrival_rate_per_s: load,
        prompt_len: 128,
        new_tokens: 8,
        seed: 99,
        kv: None,
        slo: SloTargets::default(),
        router: RouterPolicy::SharedQueue,
    })
    .ttft_p95
    .as_millis_f64()
}

fn main() {
    let loads = [5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, 1280.0];
    println!("GPT2 chat endpoint, p95 TTFT SLO = {SLO_MS} ms\n");
    println!(
        "{:<12} {:>12} {:>22} {:>22}",
        "platform", "policy", "p95@5rps (ms)", "max load under SLO"
    );
    for platform in Platform::paper_trio() {
        for (label, policy) in [
            (
                "static-8",
                Policy::Static {
                    batch_size: 8,
                    max_wait: SimDuration::from_millis(50),
                },
            ),
            ("cont-16", Policy::Continuous { max_batch: 16 }),
            ("cont-64", Policy::Continuous { max_batch: 64 }),
        ] {
            let light = p95_ms(&platform, policy, loads[0]);
            let max_ok = loads
                .iter()
                .rev()
                .find(|&&l| p95_ms(&platform, policy, l) <= SLO_MS)
                .copied();
            println!(
                "{:<12} {:>12} {:>22.1} {:>22}",
                platform.name,
                label,
                light,
                max_ok.map_or("none".into(), |l| format!("{l:.0} req/s")),
            );
        }
    }
    println!(
        "\nAn operational consequence the paper's prefill-only analysis would miss:\n\
         chat serving is decode-iteration-heavy, and decode steps stay Grace-dispatch-\n\
         bound on the GH200 to very large batches (see the decode extension), so for\n\
         this TTFT-SLO workload the loosely-coupled Xeon system sustains the most load\n\
         at every batch capacity. The GH200's throughput advantage only materializes\n\
         for prefill-heavy workloads at the batch sizes of its balanced region."
    );
}
