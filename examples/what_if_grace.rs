//! Architecture what-if: how much of the GH200's low-batch latency penalty
//! is the Grace CPU?
//!
//! The paper's conclusion says addressing the CC bottleneck "requires
//! enhancing CPU performance or employing intelligent scheduling". The
//! [`PlatformBuilder`] lets us test that counterfactual directly: swap the
//! Grace CPU for the Xeon 8468V (keeping the Hopper GPU, NVLink-C2C and
//! coupling), and re-run the BERT batch sweep.
//!
//! Run with: `cargo run --example what_if_grace`

use skip_core::ProfileReport;
use skip_hw::{CpuModel, Platform, PlatformBuilder};
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

fn main() {
    let gh200 = Platform::gh200();
    let hypothetical = PlatformBuilder::from(gh200.clone())
        .name("gh200_xeon_cpu")
        .cpu(CpuModel::xeon_8468v())
        .build();
    let intel = Platform::intel_h100();

    println!("BERT-base prefill TTFT (ms), seq=512:\n");
    println!(
        "{:>6} {:>12} {:>16} {:>12}",
        "batch", "gh200", "gh200+XeonCPU", "intel_h100"
    );
    for bs in [1u32, 2, 4, 8, 16, 32, 64] {
        let wl = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, bs, 512);
        let t = |p: &Platform| {
            ProfileReport::analyze(&Engine::new(p.clone()).run(&wl, ExecMode::Eager))
                .inference_latency
                .as_millis_f64()
        };
        println!(
            "{:>6} {:>12.2} {:>16.2} {:>12.2}",
            bs,
            t(&gh200),
            t(&hypothetical),
            t(&intel)
        );
    }

    println!("\nWith a Xeon-class CPU the closely-coupled system dominates at *every* batch size:");
    println!("the low-batch penalty is a CPU artifact, not a property of close coupling.");
}
