//! Quickstart: profile one LLM inference workload with SKIP.
//!
//! Simulates GPT2 prefill (batch 1, 512 tokens) on the GH200 superchip,
//! runs the SKIP profiler over the resulting CUPTI-style trace, prints the
//! paper's metrics (TKLQT, AKD, IL, idle times), the top-5 kernels, and
//! writes a Chrome-trace JSON you can open in `chrome://tracing` or
//! Perfetto.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;

use skip_core::{top_kernels, ProfileReport};
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};
use skip_trace::chrome;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Pick a platform and a workload (Table III / Table IV of the paper).
    let platform = Platform::gh200();
    let workload = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);

    // 2. Execute: the engine walks the eager operator graph, paying CPU
    //    dispatch and kernel-launch costs, and emits a profiler trace.
    let engine = Engine::new(platform);
    let trace = engine.run(&workload, ExecMode::Eager);
    trace.validate()?;

    // 3. Analyze with SKIP.
    let report = ProfileReport::analyze(&trace);
    println!(
        "== SKIP report: {} on {} ==",
        workload.model.name,
        engine.platform().name
    );
    println!("inference latency (TTFT) : {}", report.inference_latency);
    println!("TKLQT                    : {}", report.tklqt);
    println!("average kernel duration  : {}", report.akd);
    println!("GPU idle                 : {}", report.gpu_idle);
    println!("CPU idle                 : {}", report.cpu_idle);
    println!("kernels launched         : {}", report.kernel_count);
    println!(
        "GPU utilization          : {:.1}%",
        report.gpu_utilization() * 100.0
    );

    println!("\ntop-5 kernels by invocation count:");
    for k in top_kernels(&trace, 5) {
        println!("  {:>4}x {:<40} total {}", k.count, k.name, k.total_time);
    }

    // 4. Export for the Chrome-trace / Perfetto timeline UI.
    let json = chrome::to_chrome_trace(&trace);
    std::fs::write("gpt2_gh200_prefill.trace.json", &json)?;
    println!(
        "\nwrote gpt2_gh200_prefill.trace.json ({} bytes)",
        json.len()
    );
    Ok(())
}
