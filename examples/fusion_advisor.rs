//! Fusion advisor: proximity-score kernel-fusion recommendations for a
//! CPU-bound workload (the paper's §III-C / §V-C workflow).
//!
//! Profiles GPT2 prefill on the Intel+H100 platform, extracts the kernel
//! launch stream, and prints (a) the top fusion recommendations at a
//! moderate chain length with their proximity scores, and (b) the
//! idealized launch-saving speedup across chain lengths (Eqs. 7–8).
//!
//! Run with: `cargo run --example fusion_advisor`

use skip_core::ProfileReport;
use skip_fusion::{recommend, FusionAnalysis, KernelSequences};
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

fn main() {
    let platform = Platform::intel_h100();
    let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);
    let trace = Engine::new(platform).run(&wl, ExecMode::Eager);
    let report = ProfileReport::analyze(&trace);

    println!(
        "GPT2 prefill BS=1 on Intel+H100: TTFT {:.2} ms, {} kernel launches, GPU idle {:.2} ms",
        report.inference_latency.as_millis_f64(),
        report.kernel_count,
        report.gpu_idle.as_millis_f64()
    );
    println!("=> heavily CPU-bound: launch-tax reduction pays off directly.\n");

    println!("Top deterministic 8-kernel chains (PS = 1):");
    for rec in recommend(&trace, 8, 1.0).into_iter().take(5) {
        println!(
            "  saves {:>3} launches  PS={:.2}  [{} .. {}]",
            rec.est_launch_savings,
            rec.proximity_score,
            rec.chain.first().expect("chain is non-empty"),
            rec.chain.last().expect("chain is non-empty"),
        );
    }

    println!("\nIdealized speedup from launch savings (Eq. 8):");
    let seqs = KernelSequences::from_trace(&trace);
    for l in [2usize, 8, 32, 128, 256] {
        let a = FusionAnalysis::of_sequences(&seqs, l);
        println!(
            "  L={:<4} C_fused={:<3} K: {} -> {:<4} speedup {:.2}x",
            l,
            a.fused_chains,
            a.k_eager,
            a.k_fused,
            a.ideal_speedup()
        );
    }
}
