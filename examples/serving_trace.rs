//! Tracing a serving run down to per-request lifecycles.
//!
//! The scalar `ServingReport` tells you *that* tail latency blew up;
//! the observability layer tells you *why*. This example serves a
//! Llama-2-7B endpoint under KV-cache pressure, scores it against an SLO,
//! digs into the recorded lifecycles for the slowest request's
//! preemption history, and writes the whole run — per-request tracks,
//! preempt→resume flow arrows, queue/KV counter tracks — as a Chrome
//! trace for https://ui.perfetto.dev.
//!
//! Run with: `cargo run --release -p skip-suite --example serving_trace`

use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::zoo;
use skip_mem::{KvSpec, OffloadPolicy};
use skip_serve::{simulate_traced, KvCacheConfig, Policy, RouterPolicy, ServingConfig, SloTargets};
use skip_trace::chrome;

fn main() {
    let model = zoo::llama2_7b();
    // A pool two blocks short of two full request lifetimes: admission
    // overcommits, decode growth forces preemptions, and the offload
    // policy prices each eviction over the platform's interconnect.
    let spec = KvSpec::for_model(&model, KvSpec::DEFAULT_BLOCK_TOKENS);
    let full = spec.blocks_for(1024 + 128);
    let cfg = ServingConfig {
        platform: Platform::gh200(),
        model,
        policy: Policy::Continuous { max_batch: 4 },
        requests: 12,
        arrival_rate_per_s: 50.0,
        prompt_len: 1024,
        new_tokens: 128,
        seed: 7,
        kv: Some(KvCacheConfig::with_blocks(
            full * 2 - 2,
            OffloadPolicy::Auto,
        )),
        slo: SloTargets {
            ttft: Some(SimDuration::from_millis(200)),
            e2e: Some(SimDuration::from_secs(20)),
        },
        router: RouterPolicy::SharedQueue,
    };

    let (report, trace) = simulate_traced(&cfg, 1);
    println!(
        "== {} on {} | KV pool {} blocks | {} req/s ==",
        cfg.model.name,
        cfg.platform.name,
        full * 2 - 2,
        cfg.arrival_rate_per_s
    );
    println!(
        "completed {} | TTFT p95 {} | e2e p95 {} | {} preemptions",
        report.completed, report.ttft_p95, report.e2e_p95, report.preemptions
    );
    println!(
        "SLO: ttft attainment {:.0}% | e2e attainment {:.0}% | goodput {:.2} req/s",
        report.slo.ttft_attainment * 100.0,
        report.slo.e2e_attainment * 100.0,
        report.slo.goodput_req_s
    );
    assert!(trace.conserves_requests(), "counter conservation must hold");

    // The worst request, explained from its lifecycle record.
    let worst = trace
        .lifecycles
        .iter()
        .max_by_key(|lc| lc.e2e().unwrap_or(SimDuration::ZERO))
        .expect("at least one request");
    println!(
        "\nslowest request #{}: e2e {}, ttft {}, {} preemption(s)",
        worst.id,
        worst.e2e().expect("completed"),
        worst.ttft().expect("completed"),
        worst.preemptions()
    );
    for ev in &worst.events {
        println!("  {:>12}  {:?}", format!("{}", ev.at), ev.kind);
    }

    let out = "target/serving_trace.json";
    let exported = trace.to_trace();
    exported.validate().expect("exported trace must validate");
    std::fs::write(out, chrome::to_chrome_trace(&exported)).expect("write trace");
    println!(
        "\nwrote {out} ({} events) — load it in https://ui.perfetto.dev:\n\
         one track per request, flow arrows from each preemption to its\n\
         resume, and counter tracks for queue depth / KV occupancy.",
        exported.len()
    );
}
