//! The two serving front ends (`skip serve`, `skip plan`) must reject the
//! same bad input with the same words. Historically each subcommand
//! carried its own copy of the SLO-flag parser and its own zero-count
//! check, and the messages drifted; both now route through shared
//! helpers, and these tests pin the unified wording end to end — argv in,
//! stderr out.

use std::process::Command;

/// Runs the `skip` binary with `args`, expecting a non-zero exit, and
/// returns the trimmed stderr.
fn skip_err(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_skip"))
        .args(args)
        .output()
        .expect("skip binary runs");
    assert!(
        !out.status.success(),
        "`skip {}` unexpectedly succeeded: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stderr).trim().to_owned()
}

#[test]
fn bad_slo_flag_prints_identical_message_in_serve_and_plan() {
    for key in ["slo-ttft-ms", "slo-e2e-ms"] {
        let flag = format!("--{key}");
        let serve = skip_err(&["serve", "--model", "gpt2", &flag, "soon"]);
        let plan = skip_err(&["plan", "--model", "gpt2", &flag, "soon"]);
        assert_eq!(serve, plan, "serve and plan diverge on bad {flag}");
        assert_eq!(serve, format!("error: --{key}: bad number 'soon'"));
    }
}

#[test]
fn zero_replica_counts_print_the_canonical_wording_in_both_clis() {
    let serve = skip_err(&["serve", "--model", "gpt2", "--replicas", "0"]);
    let plan = skip_err(&["plan", "--model", "gpt2", "--max-replicas", "0"]);
    assert_eq!(serve, "error: --replicas must be at least 1");
    assert_eq!(plan, "error: --max-replicas must be at least 1");
    // Same sentence, differing only in which flag is named.
    let sans_flag = |s: &str| s.splitn(3, ' ').nth(2).unwrap().to_owned();
    assert_eq!(sans_flag(&serve), sans_flag(&plan));
}

#[test]
fn library_validators_share_the_cli_wording() {
    use skip_serve::{
        ArrivalProcess, FleetBatchPolicy, FleetConfig, FleetRouterPolicy, FleetSpec, PlannerConfig,
        Policy, RouterPolicy, ServingConfig, SloTargets, TrafficEnvelope,
    };

    let serve = ServingConfig {
        platform: skip_hw::Platform::intel_h100(),
        model: skip_llm::zoo::gpt2(),
        policy: Policy::Continuous { max_batch: 8 },
        requests: 0,
        arrival_rate_per_s: 20.0,
        prompt_len: 64,
        new_tokens: 4,
        seed: 1,
        kv: None,
        slo: SloTargets::default(),
        router: RouterPolicy::SharedQueue,
    };
    let fleet = FleetConfig {
        spec: FleetSpec::homogeneous(skip_hw::Platform::intel_h100(), 1),
        model: skip_llm::zoo::gpt2(),
        max_batch: 8,
        requests: 0,
        arrivals: ArrivalProcess::Poisson { rate_per_s: 20.0 },
        prompt_len: 64,
        new_tokens: 4,
        seed: 1,
        slo: SloTargets::default(),
        router: FleetRouterPolicy::RoundRobin,
        policy: FleetBatchPolicy::Continuous,
        autoscale: None,
    };
    let mut planner = PlannerConfig::new(TrafficEnvelope {
        model: skip_llm::zoo::gpt2(),
        qps: 20.0,
        peak_qps: None,
        requests: 0,
        prompt_len: 64,
        new_tokens: 4,
        seed: 1,
        slo: SloTargets::default(),
    });

    // Zero requests: one message, three validators.
    let serve_msg = serve.validate().unwrap_err().to_string();
    let fleet_msg = fleet.validate().unwrap_err().to_string();
    let plan_msg = planner.validate().unwrap_err().to_string();
    assert_eq!(serve_msg, "simulate at least one request");
    assert_eq!(serve_msg, fleet_msg);
    assert_eq!(serve_msg, plan_msg);

    // Non-positive rates: same sentence shape, differing only in the
    // knob's name.
    let mut serve = serve;
    serve.requests = 1;
    serve.arrival_rate_per_s = 0.0;
    let mut fleet = fleet;
    fleet.requests = 1;
    fleet.arrivals = ArrivalProcess::Poisson { rate_per_s: 0.0 };
    planner.envelope.requests = 1;
    planner.envelope.qps = 0.0;
    assert_eq!(
        serve.validate().unwrap_err().to_string(),
        "arrival rate must be positive and finite, got 0"
    );
    assert!(fleet
        .validate()
        .unwrap_err()
        .to_string()
        .ends_with("rate must be positive and finite, got 0"));
    assert_eq!(
        planner.validate().unwrap_err().to_string(),
        "offered load must be positive and finite, got 0"
    );
}
