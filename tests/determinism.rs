//! Reproducibility: the whole stack is deterministic — same configuration,
//! bit-identical traces, metrics, and recommendations.

use skip_core::ProfileReport;
use skip_fusion::{recommend, FusionAnalysis};
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{CompileMode, Engine, ExecMode};

#[test]
fn traces_are_bit_identical_across_runs() {
    for mode in [
        ExecMode::Eager,
        ExecMode::FlashAttention2,
        ExecMode::TorchCompile(CompileMode::MaxAutotune),
    ] {
        let wl = Workload::new(zoo::llama32_1b(), Phase::Prefill, 4, 256);
        let a = Engine::new(Platform::gh200()).run(&wl, mode);
        let b = Engine::new(Platform::gh200()).run(&wl, mode);
        assert_eq!(a, b, "{mode}");
        assert_eq!(ProfileReport::analyze(&a), ProfileReport::analyze(&b));
    }
}

#[test]
fn fusion_recommendations_are_deterministic() {
    let wl = Workload::new(zoo::gpt2(), Phase::Prefill, 1, 512);
    let trace = Engine::new(Platform::intel_h100()).run(&wl, ExecMode::Eager);
    let a = recommend(&trace, 16, 0.8);
    let b = recommend(&trace, 16, 0.8);
    assert_eq!(a, b);
    assert_eq!(
        FusionAnalysis::of_trace(&trace, 64),
        FusionAnalysis::of_trace(&trace, 64)
    );
}

#[test]
fn graph_generation_is_pure() {
    let wl = Workload::new(zoo::xlm_roberta_base(), Phase::Prefill, 16, 512);
    assert_eq!(wl.graph(), wl.graph());
}

#[test]
fn serde_round_trip_preserves_traces_exactly() {
    let wl = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 2, 128);
    let trace = Engine::new(Platform::amd_a100()).run(&wl, ExecMode::Eager);
    let json = serde_json::to_string(&trace).expect("serialize");
    let back: skip_trace::Trace = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(trace, back);
    assert_eq!(
        ProfileReport::analyze(&trace),
        ProfileReport::analyze(&back)
    );
}
