//! The acceptance gate for the fan-out harness: every experiment's
//! rendered output must be byte-identical at any `--threads` value.
//!
//! One `#[test]` drives all four experiments (fig6, serving, kv_capacity,
//! capacity) so the process-wide [`harness::set_threads`] override is
//! never mutated concurrently by the test runner.

use skip_bench::experiments::{capacity, fig6, kv_capacity, serving};
use skip_bench::harness;

#[test]
fn parallel_renders_are_byte_identical_to_serial() {
    harness::set_threads(1);
    let fig6_serial = fig6::render(&fig6::run());
    let serving_serial = serving::render(&serving::run());
    let kv_serial = kv_capacity::render(&kv_capacity::run());
    let capacity_serial = capacity::render(&capacity::run());

    for workers in [2, 4] {
        harness::set_threads(workers);
        assert_eq!(fig6::render(&fig6::run()), fig6_serial, "fig6 @ {workers}");
        assert_eq!(
            serving::render(&serving::run()),
            serving_serial,
            "serving @ {workers}"
        );
        assert_eq!(
            kv_capacity::render(&kv_capacity::run()),
            kv_serial,
            "kv_capacity @ {workers}"
        );
        assert_eq!(
            capacity::render(&capacity::run()),
            capacity_serial,
            "capacity @ {workers}"
        );
    }
    harness::set_threads(0);
}
