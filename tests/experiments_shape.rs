//! The headline shape claims of the paper, asserted end-to-end through the
//! experiment harness. These are the acceptance tests of the reproduction:
//! who wins, by roughly what factor, and where the crossovers fall.

use skip_bench::experiments::{fig10, fig11, fig6, fig8, table1, table5};

/// Paper §V-A / Table V: launch overhead AMD < Intel < GH200; duration the
/// reverse.
#[test]
fn table_v_orderings() {
    let rows = table5::run();
    assert_eq!(rows.len(), 3);
    assert!(rows[0].launch_overhead_ns < rows[1].launch_overhead_ns);
    assert!(rows[1].launch_overhead_ns < rows[2].launch_overhead_ns);
    assert!(rows[0].duration_ns > rows[1].duration_ns);
    assert!(rows[1].duration_ns > rows[2].duration_ns);
}

/// Paper §V-B / Fig. 6: encoders transition at batch 8 on LC systems and
/// batch 32 on the GH200 — the 4× CPU-bound-region claim.
#[test]
fn fig6_four_times_wider_cpu_bound_region() {
    let sweeps = fig6::run();
    let star = |model: &str, platform: &str| {
        sweeps
            .iter()
            .find(|s| s.model == model && s.platform == platform)
            .and_then(|s| s.transition_batch)
            .expect("transition exists")
    };
    for model in ["bert-base-uncased", "xlm-roberta-base"] {
        assert_eq!(star(model, "gh200") / star(model, "intel_h100"), 4);
        assert_eq!(star(model, "gh200") / star(model, "amd_a100"), 4);
    }
}

/// Paper §V-C / Fig. 8: idealized fusion speedups peak at ~2.7× (GPT2) and
/// ~6.8× (XLM-R) at chain length 256.
#[test]
fn fig8_peak_speedups() {
    for s in fig8::run() {
        let last = s.points.last().unwrap();
        match s.model.as_str() {
            "gpt2" => assert!((last.3 - 2.73).abs() < 0.1, "{}", last.3),
            "xlm-roberta-base" => assert!((last.3 - 6.8).abs() < 0.15, "{}", last.3),
            other => panic!("unexpected {other}"),
        }
    }
}

/// Paper §V-D / Fig. 10: the GH200 loses at batch 1 (Grace CPU) and wins
/// at batch 64 (HBM3 bandwidth), with the paper's approximate factors.
#[test]
fn fig10_crossover_story() {
    let rows = fig10::run();
    for model in ["bert-base-uncased", "xlm-roberta-base"] {
        let t = |p: &str, b: u32| fig10::find(&rows, model, p, b).ttft_ms;
        // Batch 1: GH200 slowest, Intel fastest.
        assert!(t("gh200", 1) > t("amd_a100", 1));
        assert!(t("amd_a100", 1) > t("intel_h100", 1));
        // Batch 64: order fully inverted.
        assert!(t("gh200", 64) < t("intel_h100", 64));
        assert!(t("intel_h100", 64) < t("amd_a100", 64));
        // Approximate factors (paper: 2.8x/1.9x at bs1; 1.6x/2.4x at bs64).
        assert!((2.3..3.2).contains(&(t("gh200", 1) / t("intel_h100", 1))));
        assert!((1.4..2.1).contains(&(t("intel_h100", 64) / t("gh200", 64))));
        assert!((1.9..2.7).contains(&(t("amd_a100", 64) / t("gh200", 64))));
    }
}

/// Paper §V-D / Fig. 11: GH200 wins for Llama-3.2-1B by batch 16, by more
/// over the A100 system than over the H100 system.
#[test]
fn fig11_llama_speedups() {
    let rows = fig11::run();
    let t = |p: &str, b: u32| fig10::find(&rows, "llama-3.2-1b", p, b).ttft_ms;
    let vs_intel = t("intel_h100", 16) / t("gh200", 16);
    let vs_amd = t("amd_a100", 16) / t("gh200", 16);
    assert!(vs_intel > 1.3, "{vs_intel}");
    assert!(vs_amd > vs_intel, "{vs_amd} vs {vs_intel}");
}

/// Paper Table I: compile-time ordering spans three orders of magnitude
/// and speedups land in the 1.1–1.4× band.
#[test]
fn table1_bands() {
    let rows = table1::run();
    assert!(rows[3].compile_time_s / rows[0].compile_time_s > 500.0);
    for r in &rows[1..] {
        assert!(
            (1.1..1.45).contains(&r.speedup),
            "{}: {}",
            r.mode,
            r.speedup
        );
    }
    // Paper ordering: default < reduce-overhead < max-autotune.
    assert!(rows[1].speedup <= rows[2].speedup);
    assert!(rows[2].speedup <= rows[3].speedup);
}
