//! Cross-crate integration: every (model × platform × mode) combination
//! produces a valid trace whose SKIP metrics satisfy the structural
//! invariants of the paper's equations.

use skip_core::ProfileReport;
use skip_des::SimDuration;
use skip_hw::Platform;
use skip_llm::{zoo, Phase, Workload};
use skip_runtime::{CompileMode, Engine, ExecMode};

fn all_modes() -> Vec<ExecMode> {
    let mut modes = vec![ExecMode::Eager, ExecMode::FlashAttention2];
    modes.extend(CompileMode::all().map(ExecMode::TorchCompile));
    modes
}

#[test]
fn full_matrix_produces_valid_traces_and_sane_metrics() {
    let mut platforms = Platform::paper_trio();
    platforms.push(Platform::mi300a());
    for model in zoo::table_iii() {
        for platform in &platforms {
            let engine = Engine::new(platform.clone());
            for mode in all_modes() {
                let wl = Workload::new(model.clone(), Phase::Prefill, 4, 128);
                let trace = engine.run(&wl, mode);
                trace
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{}/{mode}: {e}", model.name, platform.name));

                let r = ProfileReport::analyze(&trace);
                let ctx = format!("{}/{}/{mode}", model.name, platform.name);

                // Eq. 5: IL = GPU busy + GPU idle, exactly.
                assert_eq!(
                    r.total_kernel_time + r.gpu_idle,
                    r.inference_latency,
                    "{ctx}: Eq. 5 violated"
                );
                // CPU idle can never exceed the latency.
                assert!(r.cpu_idle <= r.inference_latency, "{ctx}");
                // Kernels exist and every one was launched.
                assert!(r.kernel_count > 0, "{ctx}");
                assert!(r.launch_count >= r.kernel_count, "{ctx}");
                // TKLQT is at least one launch overhead per kernel.
                let floor = platform.launch_overhead() * r.kernel_count as u64;
                assert!(r.tklqt >= floor, "{ctx}: TKLQT {} < floor {floor}", r.tklqt);
                // AKD times kernel count reproduces total kernel time
                // (within integer-division slack).
                let reconstructed = r.akd * r.kernel_count as u64;
                let slack = SimDuration::from_nanos(r.kernel_count as u64);
                assert!(
                    reconstructed <= r.total_kernel_time
                        && r.total_kernel_time <= reconstructed + slack,
                    "{ctx}: AKD inconsistent"
                );
            }
        }
    }
}

#[test]
fn decode_phase_runs_across_the_matrix() {
    for model in [zoo::gpt2(), zoo::llama32_1b()] {
        for platform in Platform::paper_trio() {
            let engine = Engine::new(platform.clone());
            let wl = Workload::new(model.clone(), Phase::DecodeStep { past_len: 256 }, 8, 256);
            let trace = engine.run(&wl, ExecMode::Eager);
            trace.validate().unwrap();
            let r = ProfileReport::analyze(&trace);
            // A single decode step is launch-bound: tiny kernels, idle GPU.
            assert!(r.gpu_idle > r.total_kernel_time, "{}", platform.name);
        }
    }
}

#[test]
fn fusion_modes_strictly_reduce_launch_counts() {
    let engine = Engine::new(Platform::intel_h100());
    for model in zoo::table_iii() {
        let wl = Workload::new(model.clone(), Phase::Prefill, 2, 256);
        let eager = engine.run(&wl, ExecMode::Eager).kernels().len();
        let flash = engine.run(&wl, ExecMode::FlashAttention2).kernels().len();
        let compiled = engine
            .run(&wl, ExecMode::TorchCompile(CompileMode::ReduceOverhead))
            .kernels()
            .len();
        assert!(flash < eager, "{}", model.name);
        assert!(compiled < eager, "{}", model.name);
    }
}

#[test]
fn chrome_export_round_trips_for_every_mode() {
    let engine = Engine::new(Platform::gh200());
    let wl = Workload::new(zoo::bert_base_uncased(), Phase::Prefill, 1, 128);
    for mode in all_modes() {
        let trace = engine.run(&wl, mode);
        let json = skip_trace::chrome::to_chrome_trace(&trace);
        let parsed: serde_json::Value =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("{mode}: {e}"));
        let n = parsed.as_array().expect("array").len();
        assert!(n >= trace.len(), "{mode}: {n} < {}", trace.len());
    }
}
