//! End-to-end property tests: random (but valid) architectures, batch
//! sizes and sequence lengths always produce valid traces with consistent
//! SKIP metrics, on randomly assembled platforms.

use proptest::prelude::*;
use skip_core::ProfileReport;
use skip_fusion::FusionAnalysis;
use skip_hw::Platform;
use skip_llm::{zoo, ArchStyle, ModelConfig, Phase, Workload};
use skip_runtime::{Engine, ExecMode};

/// A small random transformer config (kept tiny so the property suite
/// stays fast).
fn arb_model() -> impl Strategy<Value = ModelConfig> {
    (
        1u32..4,                                     // layers
        prop::sample::select(vec![64u32, 128, 256]), // head_dim * heads base
        prop::sample::select(vec![1u32, 2, 4]),      // heads
        0usize..3,                                   // arch selector
    )
        .prop_map(|(layers, base, heads, arch)| {
            let hidden = base * heads;
            let mut cfg = match arch {
                0 => zoo::bert_base_uncased(),
                1 => zoo::gpt2(),
                _ => zoo::llama32_1b(),
            };
            cfg.name = format!("prop-{arch}-{layers}-{hidden}-{heads}");
            cfg.layers = layers;
            cfg.hidden = hidden;
            cfg.heads = heads;
            cfg.kv_heads = heads;
            cfg.ffn = hidden * 4;
            cfg.vocab = 1000;
            if cfg.max_pos > 0 {
                cfg.max_pos = 2048;
            }
            cfg
        })
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(vec![
        Platform::amd_a100(),
        Platform::intel_h100(),
        Platform::gh200(),
        Platform::mi300a(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any workload on any platform yields a structurally valid trace
    /// whose metrics satisfy the paper's identities.
    #[test]
    fn random_workloads_produce_consistent_profiles(
        model in arb_model(),
        platform in arb_platform(),
        batch in 1u32..9,
        seq in prop::sample::select(vec![16u32, 64, 128, 512]),
    ) {
        let wl = Workload::new(model, Phase::Prefill, batch, seq);
        let trace = Engine::new(platform.clone()).run(&wl, ExecMode::Eager);
        prop_assert!(trace.validate().is_ok());
        let r = ProfileReport::analyze(&trace);
        prop_assert_eq!(r.total_kernel_time + r.gpu_idle, r.inference_latency);
        prop_assert!(r.cpu_idle <= r.inference_latency);
        prop_assert!(r.tklqt >= platform.launch_overhead() * r.kernel_count as u64);
        prop_assert_eq!(r.kernel_count, wl.graph().kernel_count());
    }

    /// TTFT is monotone non-decreasing in batch size (more work never
    /// finishes earlier on a serial dispatch + FIFO stream model).
    #[test]
    fn ttft_monotone_in_batch(
        model in arb_model(),
        platform in arb_platform(),
        seq in prop::sample::select(vec![32u32, 128]),
    ) {
        let engine = Engine::new(platform);
        let mut last = None;
        for batch in [1u32, 2, 4, 8, 16] {
            let wl = Workload::new(model.clone(), Phase::Prefill, batch, seq);
            let r = ProfileReport::analyze(&engine.run(&wl, ExecMode::Eager));
            if let Some(prev) = last {
                prop_assert!(
                    r.inference_latency >= prev,
                    "batch {batch}: {} < {prev}", r.inference_latency
                );
            }
            last = Some(r.inference_latency);
        }
    }

    /// Eq. 7/8 identities hold for any chain length on any trace: the
    /// fused launch count plus saved launches reconstructs K_eager, and
    /// speedup ≥ 1.
    #[test]
    fn fusion_analysis_identities(
        model in arb_model(),
        chain_len in 2usize..64,
    ) {
        let wl = Workload::new(model, Phase::Prefill, 1, 64);
        let trace = Engine::new(Platform::intel_h100()).run(&wl, ExecMode::Eager);
        let a = FusionAnalysis::of_trace(&trace, chain_len);
        prop_assert_eq!(a.k_fused + a.fused_chains * (chain_len - 1), a.k_eager);
        prop_assert!(a.ideal_speedup() >= 1.0);
        prop_assert_eq!(a.kernels_fused, a.fused_chains * chain_len);
        prop_assert!(a.kernels_fused <= a.k_eager);
    }

    /// FlashAttention always reduces both launches and bytes relative to
    /// eager, for any architecture.
    #[test]
    fn flash_attention_dominates_eager_statically(model in arb_model()) {
        let wl = Workload::new(model, Phase::Prefill, 2, 128);
        let eager = wl.graph();
        let flash = wl.graph_with(skip_llm::GraphOptions {
            attention: skip_llm::AttentionImpl::FlashAttention2,
        });
        prop_assert!(flash.kernel_count() < eager.kernel_count());
        prop_assert!(flash.total_bytes() < eager.total_bytes());
    }

    /// Decode steps cost strictly less than prefill for the same shape.
    #[test]
    fn decode_cheaper_than_prefill(
        model in arb_model(),
        platform in arb_platform(),
    ) {
        let engine = Engine::new(platform);
        let prefill = Workload::new(model.clone(), Phase::Prefill, 1, 128);
        let decode = Workload::new(model, Phase::DecodeStep { past_len: 128 }, 1, 128);
        let tp = ProfileReport::analyze(&engine.run(&prefill, ExecMode::Eager));
        let td = ProfileReport::analyze(&engine.run(&decode, ExecMode::Eager));
        prop_assert!(td.total_kernel_time <= tp.total_kernel_time);
    }
}

/// The random-config strategy keeps `ArchStyle` and `ModelKind` coherent.
#[test]
fn strategy_smoke() {
    let cfg = zoo::gpt2();
    assert_eq!(cfg.arch, ArchStyle::Gpt2Decoder);
}
