//! Offline stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Value`] model to JSON text and parses JSON text
//! back, providing the `to_string` / `to_string_pretty` / `from_str` / `Value`
//! surface the workspace uses. Output is compact (no spaces), keys keep
//! insertion order, and numbers print via Rust's shortest-round-trip `{}`
//! formatting.

pub use serde::Value;

use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails in this shim (kept fallible for serde_json compatibility).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Never fails in this shim (kept fallible for serde_json compatibility).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    let nl = |out: &mut String, depth: usize| {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null"); // serde_json's behaviour for non-finite
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                nl(out, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                nl(out, depth);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let src = r#"{"a":[1,2.5,-3,"x\"y\\z",null,true],"b":{"c":false}}"#;
        let v = parse(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("not json").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[] trailing").is_err());
    }

    #[test]
    fn numbers_choose_narrowest_variant() {
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-42").unwrap(), Value::I64(-42));
        assert_eq!(parse("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""A😀""#).unwrap(), Value::Str("A😀".into()));
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = parse(r#"{"k":[1,{"n":2}]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_from_str_works() {
        let xs: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let err = from_str::<Vec<u32>>("[1,-2]").unwrap_err();
        assert!(err.to_string().contains("u32"));
    }
}
