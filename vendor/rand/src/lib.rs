//! Offline stand-in for `rand` 0.8.
//!
//! Provides the small surface the workspace uses: [`rngs::SmallRng`]
//! (xoshiro256++, seeded deterministically via splitmix64), the [`Rng`] and
//! [`SeedableRng`] traits, and `gen_range` over half-open integer and float
//! ranges. The generator passes basic uniformity checks, which the serving
//! simulator's Poisson arrival tests rely on.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding interface.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below what any workspace test can detect.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generator interface.
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open range `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns a random `bool` with probability 1/2.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0_f64..1.0) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator: fast, small state, good statistical quality.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn float_range_is_uniformish() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_range(0.0_f64..1.0);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..15);
            assert!((5..15).contains(&v));
            seen[v - 5] = true;
        }
        assert!(seen.iter().all(|&s| s), "every bucket should be hit");
    }

    #[test]
    fn negative_int_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&v));
        }
    }
}
