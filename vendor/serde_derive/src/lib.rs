//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` cannot be fetched in the air-gapped build
//! environment, so this crate re-implements the two derive macros against the
//! simplified value-model serde shim in `vendor/serde`. It parses the item
//! with nothing but `proc_macro` (no `syn`/`quote`) and emits `impl
//! serde::Serialize` / `impl serde::Deserialize` blocks that convert through
//! `serde::Value`.
//!
//! Supported container shapes (everything the workspace uses):
//! * named-field structs, tuple structs, unit structs,
//! * enums with unit, tuple, and struct variants,
//! * lifetime and type generics without `where` clauses,
//! * `#[serde(transparent)]`, `#[serde(default)]`,
//!   `#[serde(skip_serializing_if = "path")]`.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip_if: Option<String>,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Body {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Param {
    is_lifetime: bool,
    name: String,
    decl: String,
}

#[derive(Debug)]
struct Item {
    name: String,
    params: Vec<Param>,
    transparent: bool,
    body: Body,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive shim: expected identifier, got {other:?}"),
        }
    }
}

/// Renders a token slice back to source text, keeping lifetimes glued.
fn stringify(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in tokens {
        match t {
            TokenTree::Punct(p) => {
                out.push(p.as_char());
                if p.spacing() == Spacing::Alone {
                    out.push(' ');
                }
            }
            other => {
                out.push_str(&other.to_string());
                out.push(' ');
            }
        }
    }
    out.trim_end().to_string()
}

/// Consumes one `#[...]` attribute (cursor is on `#`) and folds any
/// `#[serde(...)]` arguments into `attrs` / `transparent`.
fn eat_attribute(cur: &mut Cursor, attrs: &mut FieldAttrs, transparent: &mut bool) {
    assert!(cur.eat_punct('#'), "attribute must start with '#'");
    // Inner attributes (`#![..]`) never appear on items handed to derives.
    let group = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        other => panic!("serde_derive shim: malformed attribute, got {other:?}"),
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let is_serde = matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
    if !is_serde {
        return;
    }
    let args = match inner.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let mut ac = Cursor::new(args);
    while ac.peek().is_some() {
        let key = ac.expect_ident();
        let mut value = None;
        if ac.eat_punct('=') {
            match ac.next() {
                Some(TokenTree::Literal(l)) => {
                    value = Some(l.to_string().trim_matches('"').to_string());
                }
                other => panic!("serde_derive shim: expected literal after '=', got {other:?}"),
            }
        }
        match key.as_str() {
            "transparent" => *transparent = true,
            "default" => attrs.default = true,
            "skip_serializing_if" => attrs.skip_if = value,
            // Tolerated but unused by the shim (rename, deny_unknown_fields, ...).
            _ => {}
        }
        ac.eat_punct(',');
    }
}

/// Skips all attributes at the cursor, folding serde args into the outputs.
fn eat_attributes(cur: &mut Cursor, attrs: &mut FieldAttrs, transparent: &mut bool) {
    while cur.peek_punct('#') {
        eat_attribute(cur, attrs, transparent);
    }
}

fn eat_visibility(cur: &mut Cursor) {
    if cur.peek_ident("pub") {
        cur.next();
        if let Some(TokenTree::Group(g)) = cur.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                cur.next(); // pub(crate), pub(super), ...
            }
        }
    }
}

/// Parses `<...>` generics into params; cursor is just past the item name.
fn parse_generics(cur: &mut Cursor) -> Vec<Param> {
    if !cur.eat_punct('<') {
        return Vec::new();
    }
    let mut depth = 1usize;
    let mut groups: Vec<Vec<TokenTree>> = vec![Vec::new()];
    loop {
        let t = cur
            .next()
            .expect("serde_derive shim: unterminated generics");
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    groups.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        groups.last_mut().expect("non-empty").push(t);
    }
    groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|tokens| {
            let is_lifetime = matches!(&tokens[0], TokenTree::Punct(p) if p.as_char() == '\'');
            let name = if is_lifetime {
                format!("'{}", tokens[1])
            } else if matches!(&tokens[0], TokenTree::Ident(i) if i.to_string() == "const") {
                tokens[1].to_string()
            } else {
                tokens[0].to_string()
            };
            // Drop any default (`= ...`) from the declaration.
            let mut decl_tokens: Vec<TokenTree> = Vec::new();
            let mut angle = 0usize;
            for t in &tokens {
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => angle += 1,
                        '>' => angle = angle.saturating_sub(1),
                        '=' if angle == 0 => break,
                        _ => {}
                    }
                }
                decl_tokens.push(t.clone());
            }
            Param {
                is_lifetime,
                name,
                decl: stringify(&decl_tokens),
            }
        })
        .collect()
}

/// Parses the fields of a named-field body (struct or struct variant).
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        let mut _t = false;
        eat_attributes(&mut cur, &mut attrs, &mut _t);
        eat_visibility(&mut cur);
        let name = cur.expect_ident();
        assert!(
            cur.eat_punct(':'),
            "serde_derive shim: expected ':' after field {name}"
        );
        // Skip the type: consume until a top-level comma.
        let mut angle = 0usize;
        while let Some(t) = cur.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => {
                        cur.next();
                        break;
                    }
                    _ => {}
                }
            }
            cur.next();
        }
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a tuple body by top-level commas.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0usize;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma adds a phantom segment.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        let mut _t = false;
        eat_attributes(&mut cur, &mut attrs, &mut _t);
        let name = cur.expect_ident();
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.next();
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                cur.next();
                VariantKind::Named(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if cur.eat_punct('=') {
            while let Some(t) = cur.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                cur.next();
            }
        }
        cur.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let mut container = FieldAttrs::default();
    let mut transparent = false;
    eat_attributes(&mut cur, &mut container, &mut transparent);
    eat_visibility(&mut cur);
    let kw = cur.expect_ident();
    let is_enum = match kw.as_str() {
        "struct" => false,
        "enum" => true,
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    let name = cur.expect_ident();
    let params = parse_generics(&mut cur);
    assert!(
        !cur.peek_ident("where"),
        "serde_derive shim: where clauses are not supported (on {name})"
    );
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Body::Enum(parse_variants(g.stream()))
            } else {
                Body::Named(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
        None => Body::Unit,
        other => panic!("serde_derive shim: unexpected item body {other:?}"),
    };
    Item {
        name,
        params,
        transparent,
        body,
    }
}

/// `impl<decls> Trait for Name<names>` header pieces.
fn generics_pieces(item: &Item, de: bool) -> (String, String, String) {
    let mut impl_params: Vec<String> = Vec::new();
    let mut where_bounds: Vec<String> = Vec::new();
    if de {
        impl_params.push("'de".to_string());
    }
    for p in &item.params {
        impl_params.push(p.decl.clone());
        if p.is_lifetime {
            if de {
                where_bounds.push(format!("'de: {}", p.name));
            }
        } else if de {
            where_bounds.push(format!("{}: serde::Deserialize<'de>", p.name));
        } else {
            where_bounds.push(format!("{}: serde::Serialize", p.name));
        }
    }
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if item.params.is_empty() {
        String::new()
    } else {
        let names: Vec<&str> = item.params.iter().map(|p| p.name.as_str()).collect();
        format!("<{}>", names.join(", "))
    };
    let where_clause = if where_bounds.is_empty() {
        String::new()
    } else {
        format!("where {}", where_bounds.join(", "))
    };
    (impl_generics, ty_generics, where_clause)
}

/// Statements that fill a `__m: Vec<(String, Value)>` binding from fields.
fn serialize_field_stmts(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from(
        "let mut __m: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let push = format!(
            "__m.push((\"{n}\".to_string(), serde::Serialize::to_value({a})));\n",
            n = f.name,
            a = accessor(&f.name),
        );
        match &f.attrs.skip_if {
            Some(path) => out.push_str(&format!(
                "if !({path}({a})) {{ {push} }}\n",
                a = accessor(&f.name),
            )),
            None => out.push_str(&push),
        }
    }
    out
}

fn deserialize_named_fields(fields: &[Field], source: &str) -> String {
    // Emits `field: <expr>,` lines reading from the map binding `source`.
    let mut out = String::new();
    for f in fields {
        let missing = if f.attrs.default {
            "::std::default::Default::default()".to_string()
        } else {
            // Option fields decode Null as None; everything else errors.
            format!(
                "serde::Deserialize::from_value(&serde::NULL).map_err(|_| \
                 serde::DeError::custom(\"missing field {}\"))?",
                f.name
            )
        };
        out.push_str(&format!(
            "{n}: match serde::__find({source}, \"{n}\") {{\n\
             ::std::option::Option::Some(__x) => serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            n = f.name,
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let (ig, tg, wc) = generics_pieces(item, false);
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => "serde::Value::Null".to_string(),
        Body::Named(fields) => {
            if item.transparent && fields.len() == 1 {
                format!("serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                format!(
                    "{}serde::Value::Map(__m)",
                    serialize_field_stmts(fields, |n| format!("&self.{n}"))
                )
            }
        }
        Body::Tuple(n) => {
            if *n == 1 || item.transparent {
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let stmts = serialize_field_stmts(fields, |n| n.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{stmts}\
                             serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(__m))])\n\
                             }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all, clippy::pedantic)]\n\
         impl{ig} serde::Serialize for {name}{tg} {wc} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (ig, tg, wc) = generics_pieces(item, true);
    let name = &item.name;
    let err = |what: &str| {
        format!("serde::DeError::custom(concat!(\"expected {what} for \", \"{name}\"))")
    };
    let body = match &item.body {
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Named(fields) => {
            if item.transparent && fields.len() == 1 {
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: serde::Deserialize::from_value(__v)? }})",
                    f = fields[0].name
                )
            } else {
                format!(
                    "let __m = __v.as_map().ok_or_else(|| {e})?;\n\
                     ::std::result::Result::Ok({name} {{\n{fields}\n}})",
                    e = err("map"),
                    fields = deserialize_named_fields(fields, "__m"),
                )
            }
        }
        Body::Tuple(n) => {
            if *n == 1 || item.transparent {
                format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                format!(
                    "let __s = __v.as_seq().ok_or_else(|| {e})?;\n\
                     if __s.len() != {n} {{ return ::std::result::Result::Err({e}); }}\n\
                     ::std::result::Result::Ok({name}({items}))",
                    e = err("sequence"),
                    items = items.join(", "),
                )
            }
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __s = __inner.as_seq().ok_or_else(|| {e})?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({items})) }}",
                                e = err("sequence"),
                                items = items.join(", "),
                            )
                        };
                        payload_arms.push_str(&format!("\"{vn}\" => {build},\n"));
                    }
                    VariantKind::Named(fields) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __mm = __inner.as_map().ok_or_else(|| {e})?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{fields}\n}})\n\
                             }},\n",
                            e = err("map"),
                            fields = deserialize_named_fields(fields, "__mm"),
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 _ => ::std::result::Result::Err({e_var}),\n\
                 }},\n\
                 _ => {{\n\
                 let __m = __v.as_map().ok_or_else(|| {e_map})?;\n\
                 let (__k, __inner) = __m.first().ok_or_else(|| {e_var})?;\n\
                 match __k.as_str() {{\n\
                 {payload_arms}\
                 _ => ::std::result::Result::Err({e_var}),\n\
                 }}\n\
                 }}\n\
                 }}",
                e_var = err("known variant"),
                e_map = err("map"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all, clippy::pedantic)]\n\
         impl{ig} serde::Deserialize<'de> for {name}{tg} {wc} {{\n\
         fn from_value(__v: &'de serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
         {body}\n}}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl must parse")
}
