//! Offline stand-in for `criterion`.
//!
//! Compiles the workspace's bench targets against the familiar
//! `Criterion` / `BenchmarkGroup` / `Bencher` API and, when run via
//! `cargo bench`, executes each benchmark for a short fixed budget and
//! prints a coarse mean time. No statistics, warm-up tuning, or HTML
//! reports — this exists so benches build and produce sane numbers
//! without the real crate.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark (kept short; this is a smoke harness).
const BUDGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.as_ref());
        BenchmarkGroup { _parent: self }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.0, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a benchmark name and a parameter value.
    pub fn new(name: impl AsRef<str>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.as_ref(), parameter))
    }

    /// Builds an id from the parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` against the fixed budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            let _ = std::hint::black_box(routine());
            self.iterations += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= BUDGET {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iterations > 0 {
        let mean_ns = b.elapsed.as_nanos() as f64 / b.iterations as f64;
        println!("  {id}: {mean_ns:.0} ns/iter ({} iters)", b.iterations);
    } else {
        println!("  {id}: no iterations recorded");
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
