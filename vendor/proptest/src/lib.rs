//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map`, range / tuple / `collection::vec` /
//! `sample::select` / [`strategy::Just`] strategies, a deterministic test
//! RNG, [`test_runner::Config`] with `with_cases`, and the `proptest!` /
//! `prop_assert*` macros. Failing cases are reported by ordinary panics;
//! there is no shrinking — the sampled inputs are printed instead so a
//! failure is still reproducible (the RNG is fixed-seed).

pub mod test_runner {
    /// Per-suite configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// Returns a config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic RNG driving strategy sampling (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed RNG so every `cargo test` run samples identical cases.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x005E_ED0F_5EED_CAFE,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value using `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Returns a strategy applying `f` to every sampled value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with random length from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Returns a strategy yielding vectors of `element` samples whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking uniformly from a fixed list.
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    /// Returns a strategy drawing uniformly from `values` (must be
    /// non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.values.len() as u64) as usize;
            self.values[idx].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prop` path namespace (`prop::sample::select`
    /// and friends).
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Asserts a condition inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `Config::cases` sampled
/// inputs from a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let __run = |__rng: &mut $crate::test_runner::TestRng| {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                        $body
                    };
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(&mut __rng)),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} failed in `{}` (fixed-seed RNG; rerun reproduces it)",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..9, f in -1.0f64..1.0) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u64..10, 10u64..20),
            xs in prop::collection::vec(0u64..100, 1..16),
        ) {
            prop_assert!(a < b);
            prop_assert!(!xs.is_empty() && xs.len() < 16);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn select_and_map_work(
            v in prop::sample::select(vec![3u32, 5, 7]),
            e in arb_even(),
            j in Just(42u8),
        ) {
            prop_assert!(v == 3 || v == 5 || v == 7);
            prop_assert_eq!(e % 2, 0);
            prop_assert_eq!(j, 42);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(
                (0u64..1_000_000).sample(&mut a),
                (0u64..1_000_000).sample(&mut b)
            );
        }
    }
}
