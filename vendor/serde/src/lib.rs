//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of serde the workspace actually uses, built around a
//! self-describing [`Value`] tree instead of serde's visitor machinery:
//!
//! * [`Serialize`] converts a type **to** a [`Value`];
//! * [`Deserialize`] reconstructs a type **from** a [`Value`] (borrowing from
//!   it where the target type borrows, e.g. `&'de str`);
//! * the `derive` feature re-exports the derive macros from the sibling
//!   `serde_derive` shim.
//!
//! The companion `serde_json` shim renders [`Value`] to and from JSON text,
//! which is all the workspace needs (Chrome-trace export/import and
//! round-trip tests).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing tree: the data model every [`Serialize`] impl targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer.
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order preserved, keys are strings).
    Map(Vec<(String, Value)>),
}

/// A `'static` null, used by derived impls for missing optional fields.
pub static NULL: Value = Value::Null;

impl Value {
    /// The sequence contents, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// serde_json-compatible alias for [`Value::as_seq`].
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        self.as_seq()
    }

    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// serde_json-compatible alias for [`Value::as_map`].
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        self.as_map()
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, coercing from any numeric variant.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// `true` when the value is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Map lookup by key (`None` on non-maps and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_seq().and_then(|s| s.get(idx)).unwrap_or(&NULL)
    }
}

/// Deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Converts `self` into the [`Value`] data model.
pub trait Serialize {
    /// The value-model representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`], borrowing from it where needed.
pub trait Deserialize<'de>: Sized {
    /// Parses `Self` out of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `value`'s shape does not match `Self`.
    fn from_value(value: &'de Value) -> Result<Self, DeError>;
}

/// A type deserializable from any lifetime (serde's `DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Map-entry lookup used by derived `Deserialize` impls.
#[must_use]
pub fn __find<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// serde-compatible module aliases.
pub mod ser {
    pub use crate::Serialize;
}

/// serde-compatible module aliases.
pub mod de {
    pub use crate::{DeError as Error, Deserialize, DeserializeOwned};
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &'de Value) -> Result<Self, DeError> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl<'de> Deserialize<'de> for usize {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        let u = value
            .as_u64()
            .ok_or_else(|| DeError::custom("expected usize"))?;
        usize::try_from(u).map_err(|_| DeError::custom("out of range for usize"))
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &'de Value) -> Result<Self, DeError> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl<'de> Deserialize<'de> for isize {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        i64::from_value(value)
            .and_then(|i| isize::try_from(i).map_err(|_| DeError::custom("out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<'de> Deserialize<'de> for &'de str {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        value
            .as_str()
            .ok_or_else(|| DeError::custom("expected borrowed string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &'de Value) -> Result<Self, DeError> {
                let s = value
                    .as_seq()
                    .ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| DeError::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}
ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(value: &'de Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!((f64::from_value(&2.5f64.to_value()).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn value_accessors_coerce_numbers() {
        assert_eq!(Value::U64(5).as_f64(), Some(5.0));
        assert_eq!(Value::I64(5).as_u64(), Some(5));
        assert_eq!(Value::I64(-5).as_u64(), None);
        assert_eq!(Value::F64(1.5).as_u64(), None);
    }

    #[test]
    fn map_indexing() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v["a"], Value::U64(1));
        assert!(v["missing"].is_null());
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn borrowed_str_deserializes() {
        let v = Value::Str("borrow me".into());
        let s: &str = <&str>::from_value(&v).unwrap();
        assert_eq!(s, "borrow me");
    }
}
