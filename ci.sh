#!/usr/bin/env bash
# CI gate: formatting, lints, release build, full test suite.
# Everything runs offline against the vendored workspace dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings + dead code) =="
# -D dead_code keeps a deleted duplicate event loop from lingering as an
# unreferenced module after the serve/fleet floor unification.
cargo clippy --workspace --all-targets -- -D warnings -D dead_code

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo test --doc =="
cargo test --workspace --doc -q

echo "== serving_trace example (lifecycle/counter export end-to-end) =="
cargo run --release -p skip-suite --example serving_trace

echo "== skip serve CLI (chunked-prefill policy behind the JSQ router) =="
# capture, then grep: piping straight into grep -q races the CLI against
# grep's early exit (broken pipe) under pipefail
serve_out=$(cargo run --release -p skip-suite --bin skip -- serve --model gpt2 \
  --platform gh200 --policy chunked --chunk-tokens 64 --router jsq --replicas 4 \
  --requests 40 --qps 100 --seq 256 --tokens 8 --slo-ttft-ms 200)
grep -q "completed    : 40 requests" <<<"$serve_out"

echo "== skip serve CLI (disaggregated heterogeneous fleet with autoscaling) =="
fleet_out=$(cargo run --release -p skip-suite --bin skip -- serve --model gpt2 \
  --fleet gh200:1,intel_h100:3 --disagg --autoscale --arrivals bursty \
  --qps 10 --peak-qps 300 --requests 40 --seq 256 --tokens 8 --slo-ttft-ms 200)
grep -q "completed    : 40 requests" <<<"$fleet_out"

echo "== skip serve CLI (disaggregated fleet under chunked prefill) =="
chunked_fleet_out=$(cargo run --release -p skip-suite --bin skip -- serve --model gpt2 \
  --fleet gh200:1,intel_h100:3 --disagg --policy chunked --chunk-tokens 64 \
  --qps 40 --requests 40 --seq 256 --tokens 8 --slo-ttft-ms 200)
grep -q "completed    : 40 requests" <<<"$chunked_fleet_out"
grep -q "KV handoff" <<<"$chunked_fleet_out"

echo "== skip plan CLI (capacity planner frontier over the candidate space) =="
plan_out=$(cargo run --release -p skip-suite --bin skip -- plan --model gpt2 \
  --qps 80 --requests 48 --seq 128 --tokens 4 --max-replicas 3 \
  --slo-ttft-ms 400 --slo-e2e-ms 2000)
grep -q "cost-optimal fleet:" <<<"$plan_out"

echo "== skip plan CLI (pruned generational sweep over an 8-replica space) =="
plan8_out=$(cargo run --release -p skip-suite --bin skip -- plan --model llama-2-7b \
  --qps 50 --requests 64 --seq 512 --tokens 16 --max-replicas 8 \
  --slo-ttft-ms 600 --slo-e2e-ms 2500)
grep -q "cost-optimal fleet:" <<<"$plan8_out"
grep -q "pruned sweep:" <<<"$plan8_out"

echo "== parallel determinism (byte-identical renders at any --threads) =="
cargo test --release --test parallel_determinism -q

echo "== perf suite (writes BENCH_SUITE.json; >2x wall + throughput-drop gates," \
     "plus the 100k-request population smoke under an absolute wall budget) =="
cargo run --release -p skip-bench --bin perf -- --baseline BENCH_BASELINE.json --budget-ms 5000
test -s BENCH_SUITE.json || { echo "BENCH_SUITE.json missing"; exit 1; }

echo "CI OK"
